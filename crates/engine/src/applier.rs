//! The pooled applier behind [`IngestQueue::drain_pooled`]: one
//! persistent worker thread per shard, fed bursts of batches, so thread
//! spawn/join and per-batch routing overhead amortize across the burst.
//!
//! ## Why not scoped-spawn per batch
//!
//! [`CounterEngine::apply_parallel`](crate::CounterEngine::apply_parallel)
//! spawns one scoped thread per touched shard *per batch* — fine for the
//! occasional large batch, ruinous at pipeline rates where a batch is a
//! few thousand pairs and spawn/join costs rival application. The pool
//! spawns its workers once per drain and ships work over channels.
//!
//! ## The era-per-burst protocol
//!
//! The dispatcher (the drain thread, which owns `&mut CounterEngine`)
//! repeatedly:
//!
//! 1. pops a burst of up to [`BURST_BATCHES`] batches (one blocking pop,
//!    then nonblocking pops),
//! 2. routes every pair to its shard bucket via the engine's Lemire
//!    `shard_of`,
//! 3. *moves* each touched shard's `Arc` out of the engine and ships it
//!    to that shard's worker together with its bucket,
//! 4. collects every reply, reinstalls the shards, records the applied
//!    marks, and runs the burst hook.
//!
//! Between bursts the engine is whole and quiescent, so hooks can freeze
//! snapshots exactly as they do on the per-batch drains. Workers perform
//! the copy-on-write `Arc::make_mut` split themselves — an improvement
//! over the scoped path, where every split ran serially on the applier
//! thread.
//!
//! Determinism: bursts concatenate batches in arrival order and buckets
//! preserve that order per shard, and each shard consumes only its own
//! RNG stream — so the pooled drain is bit-identical to a sequential
//! drain of the same arrival order. The opt-in key-run fold
//! ([`IngestConfig::fold_runs`](crate::IngestConfig::fold_runs)) trades
//! that bit-exactness (not correctness) for fewer counter transitions;
//! see the ingest module docs.

use crate::ingest::{Batch, IngestQueue};
use crate::registry::CounterEngine;
use crate::shard::Shard;
use ac_core::ApproxCounter;
use std::sync::mpsc;
use std::sync::Arc;

/// Max batches drained per burst. Large enough to amortize the
/// fan-out/fan-in channel round trip, small enough that burst-boundary
/// hooks (checkpoint cadence, snapshot publication) stay responsive.
pub(crate) const BURST_BATCHES: usize = 64;

/// One unit of work for a shard worker: the shard (moved out of the
/// engine for the burst), the epoch to stamp, and the pairs routed to it.
struct Job<C> {
    slot: usize,
    shard: Arc<Shard<C>>,
    epoch: u64,
    pairs: Vec<(u64, u64)>,
    fold: bool,
}

/// A worker's reply: the shard back, plus how many pairs the fold elided.
struct Done<C> {
    slot: usize,
    shard: Arc<Shard<C>>,
    folded: u64,
}

fn worker<C: ApproxCounter + Clone>(
    jobs: mpsc::Receiver<Job<C>>,
    done: mpsc::Sender<Done<C>>,
    template: C,
) {
    while let Ok(job) = jobs.recv() {
        let Job {
            slot,
            mut shard,
            epoch,
            pairs,
            fold,
        } = job;
        let s = Arc::make_mut(&mut shard);
        s.touch(epoch);
        let folded = if fold {
            s.apply_folded(&template, pairs)
        } else {
            s.apply_pairs(&template, &pairs);
            0
        };
        if done
            .send(Done {
                slot,
                shard,
                folded,
            })
            .is_err()
        {
            return;
        }
    }
}

/// The drain loop behind [`IngestQueue::drain_pooled_with`].
pub(crate) fn drain_pooled_with<C, F>(
    queue: &IngestQueue,
    engine: &mut CounterEngine<C>,
    hook: F,
) -> u64
where
    C: ApproxCounter + Clone + Send + Sync,
    F: FnMut(&mut CounterEngine<C>, u64),
{
    drain_pooled_tap(queue, engine, |_| {}, hook)
}

/// The drain loop behind [`IngestQueue::drain_pooled_tap`]:
/// [`drain_pooled_with`] plus a per-batch pair tap, run on the dispatcher
/// thread before the burst is routed — so an observer (e.g. a hot-key
/// detector steering tier migrations) sees exactly the applied stream,
/// in arrival order, without the burst hook having to re-derive it.
pub(crate) fn drain_pooled_tap<C, T, F>(
    queue: &IngestQueue,
    engine: &mut CounterEngine<C>,
    mut tap: T,
    mut hook: F,
) -> u64
where
    C: ApproxCounter + Clone + Send + Sync,
    T: FnMut(&[(u64, u64)]),
    F: FnMut(&mut CounterEngine<C>, u64),
{
    let shards = engine.shards().len();
    let fold = queue.config().fold_runs;
    let burst_cap = queue.config().burst_events;
    let template = engine.template().clone();
    let mut applied = 0u64;

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<Done<C>>();
        let job_txs: Vec<mpsc::Sender<Job<C>>> = (0..shards)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<Job<C>>();
                let done = done_tx.clone();
                let template = template.clone();
                scope.spawn(move || worker(rx, done, template));
                tx
            })
            .collect();
        drop(done_tx);

        let mut burst: Vec<Batch> = Vec::with_capacity(BURST_BATCHES);
        let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
        while let Some(first) = queue.next_batch() {
            let mut burst_ev = first.events();
            burst.push(first);
            while burst.len() < BURST_BATCHES && burst_ev < burst_cap {
                match queue.try_next_batch() {
                    Some(batch) => {
                        burst_ev += batch.events();
                        burst.push(batch);
                    }
                    None => break,
                }
            }

            for batch in &burst {
                tap(&batch.pairs);
                for &(key, delta) in &batch.pairs {
                    buckets[engine.shard_of(key)].push((key, delta));
                }
            }

            let epoch = engine.epoch();
            let mut outstanding = 0usize;
            for (slot, bucket) in buckets.iter_mut().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let pairs = std::mem::take(bucket);
                let shard = engine.take_shard(slot);
                job_txs[slot]
                    .send(Job {
                        slot,
                        shard,
                        epoch,
                        pairs,
                        fold,
                    })
                    .expect("applier worker alive");
                outstanding += 1;
            }

            let mut folded = 0u64;
            for _ in 0..outstanding {
                let done = done_rx.recv().expect("applier worker reply");
                engine.put_shard(done.slot, done.shard);
                folded += done.folded;
            }
            if folded > 0 {
                queue.note_folded(folded);
            }
            for batch in burst.drain(..) {
                applied += batch.events();
                queue.note_applied(&batch);
            }
            hook(engine, applied);
        }
        drop(job_txs);
    });
    applied
}
