//! The persistent shard-worker appliers: the pooled drain behind
//! [`IngestQueue::drain_pooled`] and the routed drain behind
//! [`IngestQueue::drain_routed`]. Both keep one worker thread per shard
//! alive for the whole drain, fed in bursts, so thread spawn/join and
//! coordination amortize across many batches.
//!
//! ## Why not scoped-spawn per batch
//!
//! [`CounterEngine::apply_parallel`](crate::CounterEngine::apply_parallel)
//! spawns one scoped thread per touched shard *per batch* — fine for the
//! occasional large batch, ruinous at pipeline rates where a batch is a
//! few thousand pairs and spawn/join costs rival application. The pools
//! here spawn their workers once per drain and ship work over channels.
//!
//! ## The era-per-burst protocol (pooled)
//!
//! The dispatcher (the drain thread, which owns `&mut CounterEngine`)
//! repeatedly:
//!
//! 1. pops a burst of up to
//!    [`IngestConfig::burst_batches`](crate::IngestConfig::burst_batches)
//!    batches (one blocking pop, then nonblocking pops),
//! 2. routes every pair to its shard bucket via the engine's Lemire
//!    `shard_of`,
//! 3. *moves* each touched shard's `Arc` out of the engine and ships it
//!    to that shard's worker together with its bucket,
//! 4. collects every reply, reinstalls the shards, records the applied
//!    marks, and runs the burst hook.
//!
//! Step 2 is the pooled path's scaling cap: one thread re-hashes and
//! copies every pair, no matter how many shards wait behind it.
//!
//! ## The routed burst protocol
//!
//! On a routed queue ([`IngestQueue::new_routed`](crate::IngestQueue::new_routed))
//! producers already routed every pair into per-(producer, shard) lanes
//! at send time, so the dispatch copy disappears and the drain thread
//! shrinks to a burst *coordinator*. Per burst it:
//!
//! 1. snapshots the producer rings and fixes a **consistent cut** per
//!    producer — `min(committed, applied + burst_batches)`, where
//!    `committed` only ever covers fully-published batches,
//! 2. moves *every* shard out of the engine and ships it to its worker
//!    with the cut table; each worker pops its own lane set up to the
//!    cuts (producer-id order) and applies only if it drew work — an
//!    idle shard is never `make_mut` (which would copy-on-write-split a
//!    slab snapshots still share) and never stamped into the burst era,
//! 3. collects every reply, reinstalls the shards, merges the per-shard
//!    tap collections (shard order) into the detector tap, advances the
//!    applied marks to the cuts, and runs the burst hook.
//!
//! Between bursts — on either path — the engine is whole and quiescent,
//! so hooks can freeze snapshots exactly as they do on the per-batch
//! drains. Workers perform the copy-on-write `Arc::make_mut` split
//! themselves, in parallel.
//!
//! Determinism: both paths preserve each producer's batch order per
//! shard, and each shard consumes only its own RNG stream — so both are
//! bit-identical to a sequential drain of the same arrival order, and to
//! each other (single producer; with several producers the interleaving
//! is scheduling-dependent in any mode). The opt-in key-run fold
//! ([`IngestConfig::fold_runs`](crate::IngestConfig::fold_runs)) trades
//! that bit-exactness (not correctness) for fewer counter transitions;
//! see the ingest module docs.

use crate::ingest::{Batch, IngestQueue, LaneBatch, ProducerRing};
use crate::registry::CounterEngine;
use crate::shard::Shard;
use ac_core::ApproxCounter;
use std::sync::mpsc;
use std::sync::Arc;

/// One unit of work for a shard worker: the shard (moved out of the
/// engine for the burst), the epoch to stamp, and the pairs routed to it.
struct Job<C> {
    slot: usize,
    shard: Arc<Shard<C>>,
    epoch: u64,
    pairs: Vec<(u64, u64)>,
    fold: bool,
}

/// A worker's reply: the shard back, plus how many pairs the fold elided.
struct Done<C> {
    slot: usize,
    shard: Arc<Shard<C>>,
    folded: u64,
}

fn worker<C: ApproxCounter + Clone>(
    jobs: mpsc::Receiver<Job<C>>,
    done: mpsc::Sender<Done<C>>,
    template: C,
) {
    while let Ok(job) = jobs.recv() {
        let Job {
            slot,
            mut shard,
            epoch,
            pairs,
            fold,
        } = job;
        let s = Arc::make_mut(&mut shard);
        s.touch(epoch);
        let folded = if fold {
            s.apply_folded(&template, pairs)
        } else {
            s.apply_pairs(&template, &pairs);
            0
        };
        if done
            .send(Done {
                slot,
                shard,
                folded,
            })
            .is_err()
        {
            return;
        }
    }
}

/// The drain loop behind [`IngestQueue::drain_pooled_with`].
pub(crate) fn drain_pooled_with<C, F>(
    queue: &IngestQueue,
    engine: &mut CounterEngine<C>,
    hook: F,
) -> u64
where
    C: ApproxCounter + Clone + Send + Sync,
    F: FnMut(&mut CounterEngine<C>, u64),
{
    drain_pooled_tap(queue, engine, |_| {}, hook)
}

/// The drain loop behind [`IngestQueue::drain_pooled_tap`]:
/// [`drain_pooled_with`] plus a per-batch pair tap, run on the dispatcher
/// thread before the burst is routed — so an observer (e.g. a hot-key
/// detector steering tier migrations) sees exactly the applied stream,
/// in arrival order, without the burst hook having to re-derive it.
pub(crate) fn drain_pooled_tap<C, T, F>(
    queue: &IngestQueue,
    engine: &mut CounterEngine<C>,
    mut tap: T,
    mut hook: F,
) -> u64
where
    C: ApproxCounter + Clone + Send + Sync,
    T: FnMut(&[(u64, u64)]),
    F: FnMut(&mut CounterEngine<C>, u64),
{
    let shards = engine.shards().len();
    let fold = queue.config().fold_runs;
    let burst_cap = queue.config().burst_events;
    let burst_batches = queue.config().burst_batches;
    let template = engine.template().clone();
    let mut applied = 0u64;

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<Done<C>>();
        let job_txs: Vec<mpsc::Sender<Job<C>>> = (0..shards)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<Job<C>>();
                let done = done_tx.clone();
                let template = template.clone();
                scope.spawn(move || worker(rx, done, template));
                tx
            })
            .collect();
        drop(done_tx);

        let mut burst: Vec<Batch> = Vec::with_capacity(burst_batches);
        let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
        while let Some(first) = queue.next_batch() {
            let mut burst_ev = first.events();
            burst.push(first);
            while burst.len() < burst_batches && burst_ev < burst_cap {
                match queue.try_next_batch() {
                    Some(batch) => {
                        burst_ev += batch.events();
                        burst.push(batch);
                    }
                    None => break,
                }
            }

            for batch in &burst {
                tap(&batch.pairs);
                for &(key, delta) in &batch.pairs {
                    buckets[engine.shard_of(key)].push((key, delta));
                }
            }

            let epoch = engine.epoch();
            let mut outstanding = 0usize;
            for (slot, bucket) in buckets.iter_mut().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let pairs = std::mem::take(bucket);
                let shard = engine.take_shard(slot);
                job_txs[slot]
                    .send(Job {
                        slot,
                        shard,
                        epoch,
                        pairs,
                        fold,
                    })
                    .expect("applier worker alive");
                outstanding += 1;
            }

            let mut folded = 0u64;
            for _ in 0..outstanding {
                let done = done_rx.recv().expect("applier worker reply");
                engine.put_shard(done.slot, done.shard);
                folded += done.folded;
            }
            if folded > 0 {
                queue.note_folded(folded);
            }
            for batch in burst.drain(..) {
                applied += batch.events();
                queue.note_applied(&batch);
            }
            hook(engine, applied);
        }
        drop(job_txs);
    });
    applied
}

/// One routed-burst unit of work for a shard worker: the shard (moved
/// out of the engine for the burst), the epoch to stamp, and the
/// per-producer sequence cuts bounding the lane sweep.
struct LaneJob<C> {
    slot: usize,
    shard: Arc<Shard<C>>,
    epoch: u64,
    cuts: Arc<Vec<(Arc<ProducerRing>, u64)>>,
    fold: bool,
    collect: bool,
}

/// A lane worker's reply: the shard back, the events it applied this
/// burst, how many pairs the fold elided, and (when collecting) the
/// applied pairs for the coordinator's tap.
struct LaneDone<C> {
    slot: usize,
    shard: Arc<Shard<C>>,
    events: u64,
    folded: u64,
    tapped: Vec<(u64, u64)>,
}

fn lane_worker<C: ApproxCounter + Clone>(
    queue: IngestQueue,
    jobs: mpsc::Receiver<LaneJob<C>>,
    done: mpsc::Sender<LaneDone<C>>,
    template: C,
) {
    while let Ok(job) = jobs.recv() {
        let LaneJob {
            slot,
            mut shard,
            epoch,
            cuts,
            fold,
            collect,
        } = job;
        let mut batches: Vec<LaneBatch> = Vec::new();
        for (ring, cut) in cuts.iter() {
            let lane = ring.lane(slot);
            while let Some(batch) = lane.pop_if(|b| b.seq <= *cut) {
                queue.notify_space();
                batches.push(batch);
            }
        }
        let mut events = 0u64;
        let mut folded = 0u64;
        let mut tapped: Vec<(u64, u64)> = Vec::new();
        if !batches.is_empty() {
            // Only a shard that drew work joins the burst era: make_mut
            // on an idle shard would copy-on-write-split slabs that live
            // snapshots still share, and touch would mis-stamp its dirty
            // epoch.
            let s = Arc::make_mut(&mut shard);
            s.touch(epoch);
            for batch in &batches {
                events += batch.pairs.iter().map(|&(_, delta)| delta).sum::<u64>();
            }
            if fold {
                let pairs: Vec<(u64, u64)> = batches
                    .iter()
                    .flat_map(|b| b.pairs.iter().copied())
                    .collect();
                folded = s.apply_folded(&template, pairs);
            } else {
                for batch in &batches {
                    s.apply_pairs(&template, &batch.pairs);
                }
            }
            if collect {
                for batch in &mut batches {
                    tapped.append(&mut batch.pairs);
                }
            }
        }
        if done
            .send(LaneDone {
                slot,
                shard,
                events,
                folded,
                tapped,
            })
            .is_err()
        {
            return;
        }
    }
}

/// The drain loop behind [`IngestQueue::drain_routed_with`] and
/// [`IngestQueue::drain_routed_tap`]. See the module docs for the burst
/// protocol; `collect` turns on per-shard pair collection for `tap`.
pub(crate) fn drain_routed_inner<C, T, F>(
    queue: &IngestQueue,
    engine: &mut CounterEngine<C>,
    collect: bool,
    mut tap: T,
    mut hook: F,
) -> u64
where
    C: ApproxCounter + Clone + Send + Sync,
    T: FnMut(&[(u64, u64)]),
    F: FnMut(&mut CounterEngine<C>, u64),
{
    let router = queue
        .router()
        .expect("drain_routed needs a queue built with IngestQueue::new_routed");
    assert_eq!(
        router,
        engine.router(),
        "routed queue and engine disagree on the key-to-shard partition"
    );
    let shards = engine.shards().len();
    let fold = queue.config().fold_runs;
    let burst_batches = queue.config().burst_batches as u64;
    let template = engine.template().clone();
    let mut applied = 0u64;

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<LaneDone<C>>();
        let job_txs: Vec<mpsc::Sender<LaneJob<C>>> = (0..shards)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<LaneJob<C>>();
                let done = done_tx.clone();
                let template = template.clone();
                let queue = queue.clone();
                scope.spawn(move || lane_worker(queue, rx, done, template));
                tx
            })
            .collect();
        drop(done_tx);

        while let Some(rings) = queue.next_routed_burst() {
            // Tiny-burst pacing: the coordinator does no per-pair work,
            // so left alone it outruns the producers and degenerates into
            // one full worker barrier per freshly-committed batch. Yield
            // scheduling slots to the producers while the backlog is
            // still growing toward a full burst; stop as soon as a yield
            // buys no new batches, so an idle or slow stream never stalls
            // the burst hooks. (The pooled dispatcher self-paces for free
            // through its bucket-copy work.)
            let backlog = |rings: &[Arc<ProducerRing>]| -> u64 {
                rings
                    .iter()
                    .map(|r| r.committed().saturating_sub(r.applied()))
                    .sum()
            };
            let burst_target = burst_batches.saturating_mul(rings.len() as u64);
            let mut pending = backlog(&rings);
            for _ in 0..64 {
                if pending >= burst_target {
                    break;
                }
                std::thread::yield_now();
                let now = backlog(&rings);
                if now == pending {
                    break;
                }
                pending = now;
            }
            // A consistent cut per producer: only fully-published batches
            // (committed is stored after every lane slice of the batch),
            // at most burst_batches new ones.
            let cuts: Arc<Vec<(Arc<ProducerRing>, u64)>> = Arc::new(
                rings
                    .iter()
                    .map(|ring| {
                        let cut = ring
                            .committed()
                            .min(ring.applied().saturating_add(burst_batches));
                        (Arc::clone(ring), cut)
                    })
                    .collect(),
            );
            let epoch = engine.epoch();
            for (slot, tx) in job_txs.iter().enumerate() {
                tx.send(LaneJob {
                    slot,
                    shard: engine.take_shard(slot),
                    epoch,
                    cuts: Arc::clone(&cuts),
                    fold,
                    collect,
                })
                .expect("lane worker alive");
            }

            let mut dones: Vec<LaneDone<C>> = (0..shards)
                .map(|_| done_rx.recv().expect("lane worker reply"))
                .collect();
            dones.sort_unstable_by_key(|d| d.slot);
            let mut burst_events = 0u64;
            let mut folded = 0u64;
            for done in dones {
                engine.put_shard(done.slot, done.shard);
                burst_events += done.events;
                folded += done.folded;
                if collect && !done.tapped.is_empty() {
                    tap(&done.tapped);
                }
            }
            if folded > 0 {
                queue.note_folded(folded);
            }
            for (ring, cut) in cuts.iter() {
                ring.note_applied_seq(*cut);
            }
            queue.note_applied_events(burst_events);
            applied += burst_events;
            hook(engine, applied);
        }
        drop(job_txs);
    });
    applied
}
