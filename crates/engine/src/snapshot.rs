//! The snapshot/serve layer: immutable, cheaply-cloneable read replicas.
//!
//! [`CounterEngine::snapshot`] freezes the engine at a point in time into
//! an [`EngineSnapshot`] by cloning the per-shard `Arc`s — `O(shards)`
//! pointer bumps, no counter is copied at freeze time. The engine keeps
//! writing through [`Arc::make_mut`]: the first post-freeze write to a
//! shard clones that one slab (copy-on-write), so the freeze's true cost
//! is `O(dirty shards)`, paid lazily by the writers that actually
//! collide with the frozen era. After the freeze:
//!
//! * **queries never contend with writers** — the snapshot owns (or
//!   still shares, immutably) its data. No lock is shared, so
//!   `estimate` latency is flat no matter how hard the write path runs;
//! * **clones are O(shards) pointer bumps** — hand a replica to every
//!   serving thread;
//! * **the checkpoint layer serializes snapshots**, not live engines, so
//!   durability rides the same freeze and the write path never stalls for
//!   I/O (see [`crate::checkpoint_snapshot`] and
//!   [`crate::checkpoint_delta`]).
//!
//! The cross-shard merged aggregate (Remark 2.4) is *not* folded at
//! freeze time any more — folding is `O(keys)` and would put the one
//! expensive scan back on the freeze path. [`EngineSnapshot::merged_total`]
//! computes it on demand, on whichever reader thread wants it.
//!
//! [`CounterEngine::snapshot_deep`] keeps the PR 3 stop-the-world
//! `O(keys)` deep-clone freeze alive as a benchmark baseline and as the
//! oracle for the CoW-equivalence property tests.

use crate::registry::{
    CounterEngine, EngineConfig, FoldCache, FoldEntry, TieredFoldCache, TieredFoldEntry,
};
use crate::shard::{route, Shard};
use ac_core::{ApproxCounter, CoreError, Mergeable};
use ac_randkit::RandomSource;
use std::sync::Arc;
use std::time::Instant;

/// An immutable point-in-time replica of a [`CounterEngine`].
///
/// Created by [`CounterEngine::snapshot`]; cloning is cheap (shared
/// frozen shards). Every query runs lock-free against the frozen data
/// (the merged-aggregate fold cache behind
/// [`EngineSnapshot::merged_total`] is the one mutex, taken only by that
/// call).
#[derive(Debug, Clone)]
pub struct EngineSnapshot<C> {
    pub(crate) shards: Vec<Arc<Shard<C>>>,
    pub(crate) template: C,
    config: EngineConfig,
    salt: u64,
    /// The freeze epoch this replica belongs to; the delta-checkpoint
    /// layer compares shard dirty epochs against parents through it.
    epoch: u64,
    keys: usize,
    events: u64,
    /// Per-shard fold cache, shared with the engine and every sibling
    /// snapshot of the same lineage.
    fold_cache: FoldCache<C>,
    /// Per-shard tiered fold cache, shared the same way (used only by
    /// [`EngineSnapshot::merged_estimate_tiered`]).
    tiered_fold_cache: TieredFoldCache,
}

impl<C: ApproxCounter + Clone> CounterEngine<C> {
    /// Freezes a read replica of the engine's current state: `O(shards)`
    /// `Arc` clones plus an `O(shards)` metadata scan. No counter is
    /// copied here; shards the writer touches after this call are cloned
    /// lazily, one shard at a time, by the write path (copy-on-write).
    ///
    /// Takes `&mut self` because a freeze advances the engine's epoch
    /// clock (and records its own duration for
    /// [`EngineStats::last_freeze_ns`](crate::EngineStats::last_freeze_ns)).
    pub fn snapshot(&mut self) -> EngineSnapshot<C> {
        let start = Instant::now();
        let shards: Vec<Arc<Shard<C>>> = self.shards().to_vec();
        let snap = self.freeze_parts(shards, start);
        debug_assert_eq!(snap.epoch + 1, self.epoch());
        snap
    }

    /// The PR 3 freeze: deep-clones every slab, `O(keys)`, stopping the
    /// world for the duration. Kept as the measured baseline the
    /// copy-on-write path is benchmarked against, and as the oracle in
    /// the CoW-equivalence property tests — not for production use.
    pub fn snapshot_deep(&mut self) -> EngineSnapshot<C> {
        let start = Instant::now();
        let shards: Vec<Arc<Shard<C>>> = self
            .shards()
            .iter()
            .map(|s| Arc::new(s.as_ref().clone()))
            .collect();
        self.freeze_parts(shards, start)
    }

    fn freeze_parts(&mut self, shards: Vec<Arc<Shard<C>>>, start: Instant) -> EngineSnapshot<C> {
        let keys = shards.iter().map(|s| s.len()).sum();
        let events = shards.iter().map(|s| s.events()).sum();
        let snap = EngineSnapshot {
            shards,
            template: self.template().clone(),
            config: self.config(),
            salt: self.salt(),
            epoch: 0, // patched below, after the freeze is timed
            keys,
            events,
            fold_cache: Arc::clone(self.fold_cache()),
            tiered_fold_cache: Arc::clone(self.tiered_fold_cache()),
        };
        let freeze_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let epoch = self.note_freeze(freeze_ns);
        EngineSnapshot { epoch, ..snap }
    }
}

impl<C: ApproxCounter + Clone> EngineSnapshot<C> {
    /// The estimate for `key` at freeze time, or `None` if the key had
    /// never been touched.
    #[must_use]
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.counter(key).map(ApproxCounter::estimate)
    }

    /// Read-only access to `key`'s frozen counter.
    #[must_use]
    pub fn counter(&self, key: u64) -> Option<&C> {
        self.shards[route(self.salt, self.shards.len(), key)].get(key)
    }

    /// Folds the cross-shard merged aggregate: a single counter
    /// distributed as if it had processed the whole frozen stream
    /// (Remark 2.4), agreeing with [`EngineSnapshot::total_events`]
    /// within the family's `(ε, δ)` guarantee. Run it on a reader
    /// thread; the freeze itself never pays this fold.
    ///
    /// ## Per-shard caching
    ///
    /// The fold is computed in two stages — each shard's counters merge
    /// into one per-shard contribution, then the `O(shards)`
    /// contributions merge into the total — and the per-shard stage is
    /// **cached across freezes, keyed on dirty epochs**: a shard
    /// untouched since the last fold reuses its cached contribution, so
    /// between two freezes the recomputation cost is `O(dirty shards'
    /// keys + shards)`, not `O(all keys)`. The cache is shared by the
    /// engine and every snapshot of its lineage. Because cache hits skip
    /// their shard's merge draws, the *sequence* of draws taken from
    /// `rng` depends on cache warmth; the distribution of the result
    /// (the Remark 2.4 guarantee) does not.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::MergeMismatch`] from the fold —
    /// unreachable when all counters are clones of one template, as here.
    pub fn merged_total(&self, rng: &mut dyn RandomSource) -> Result<C, CoreError>
    where
        C: Mergeable,
    {
        let mut cache = self.fold_cache.lock().expect("fold cache lock");
        let mut total = self.template.clone();
        total.reset();
        for (slot, shard) in cache.iter_mut().zip(&self.shards) {
            let fresh = matches!(
                slot,
                Some(e) if e.dirty_epoch == shard.dirty_epoch()
                    && e.events == shard.events()
                    && e.len == shard.len()
            );
            if !fresh {
                let mut folded = self.template.clone();
                folded.reset();
                for c in shard.counters() {
                    folded.merge_from(c, rng)?;
                }
                *slot = Some(FoldEntry {
                    dirty_epoch: shard.dirty_epoch(),
                    events: shard.events(),
                    len: shard.len(),
                    folded,
                });
            }
            let entry = slot.as_ref().expect("slot filled above");
            total.merge_from(&entry.folded, rng)?;
        }
        Ok(total)
    }

    /// Distinct keys at freeze time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys
    }

    /// True when the engine had no keys at freeze time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Exact total increments at freeze time.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.events
    }

    /// The engine configuration the snapshot was frozen from (embedded in
    /// checkpoints as part of the engine's identity).
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The freeze epoch this replica was cut at (monotone per engine;
    /// checkpoint headers embed it to order delta chains).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-stamps the freeze epoch. Chain compaction uses it to write a
    /// base that claims the *folded tip's* epoch (the restored engine's
    /// own clock sits one past it) so deltas cut against that tip still
    /// chain onto the compacted base; tests use it to normalize the one
    /// header field that legitimately differs before comparing two
    /// checkpoint encodings byte for byte.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Iterates all frozen `(key, counter)` pairs, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &C)> {
        self.shards.iter().flat_map(|s| s.entries())
    }

    /// Sum of frozen counter register bits — the snapshot-side twin of
    /// [`EngineStats::state_bits_total`](crate::EngineStats::state_bits_total).
    /// `O(shards)`: each shard maintains its sum incrementally.
    #[must_use]
    pub fn counter_state_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.state_bits()).sum()
    }
}

impl EngineSnapshot<ac_core::CounterFamily> {
    /// The cross-shard merged aggregate for a **tiered** snapshot, where
    /// keys on different rungs hold different counter families and a
    /// single [`EngineSnapshot::merged_total`] fold would refuse to mix
    /// them. Counters merge *within* each tier under the family's merge
    /// law (Remark 2.4), and the per-tier totals' estimates sum — so the
    /// result inherits each tier's `(ε, δ)` guarantee on its share of the
    /// stream rather than one family-wide bound.
    ///
    /// `tiers` is the ladder length; a tag at or above it is refused.
    ///
    /// ## Per-shard caching
    ///
    /// Like [`EngineSnapshot::merged_total`], the fold runs in two
    /// stages — each shard's counters merge into one per-tier aggregate
    /// vector, then the `O(shards × tiers)` vectors merge into per-tier
    /// totals — and the per-shard stage is cached across freezes on the
    /// same `(dirty_epoch, events, len)` validity key (plus the ladder
    /// length). Between two freezes the cost is `O(dirty shards' keys +
    /// shards × tiers)`, not `O(all keys)`. Tier migrations, which change
    /// counter state without moving the validity triple, evict their
    /// shards' slots explicitly
    /// (see [`CounterEngine::apply_migrations`]). As with `merged_total`,
    /// cache warmth changes the *sequence* of draws taken from `rng`, not
    /// the distribution of the result.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidState`] when a key carries a tier tag outside
    /// `0..tiers`; [`CoreError::MergeMismatch`] is unreachable because
    /// counters within one tier are clones of one template.
    pub fn merged_estimate_tiered(
        &self,
        tiers: usize,
        rng: &mut dyn RandomSource,
    ) -> Result<f64, CoreError> {
        let mut cache = self.tiered_fold_cache.lock().expect("tiered fold cache");
        let mut per_tier: Vec<Option<ac_core::CounterFamily>> = vec![None; tiers];
        for (slot, shard) in cache.iter_mut().zip(&self.shards) {
            let fresh = matches!(
                slot,
                Some(e) if e.dirty_epoch == shard.dirty_epoch()
                    && e.events == shard.events()
                    && e.len == shard.len()
                    && e.folded.len() == tiers
            );
            if !fresh {
                let mut folded: Vec<Option<ac_core::CounterFamily>> = vec![None; tiers];
                for (_, counter, tier) in shard.entries_tagged() {
                    let acc = folded
                        .get_mut(usize::from(tier))
                        .ok_or(CoreError::InvalidState {
                            what: "key carries a tier tag outside the ladder",
                        })?;
                    match acc {
                        None => *acc = Some(counter.clone()),
                        Some(acc) => acc.merge_from(counter, rng)?,
                    }
                }
                *slot = Some(TieredFoldEntry {
                    dirty_epoch: shard.dirty_epoch(),
                    events: shard.events(),
                    len: shard.len(),
                    folded,
                });
            }
            let entry = slot.as_ref().expect("slot filled above");
            for (total, part) in per_tier.iter_mut().zip(&entry.folded) {
                if let Some(p) = part {
                    match total {
                        None => *total = Some(p.clone()),
                        Some(t) => t.merge_from(p, rng)?,
                    }
                }
            }
        }
        Ok(per_tier.into_iter().flatten().map(|c| c.estimate()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, NelsonYuCounter, NyParams};
    use ac_randkit::Xoshiro256PlusPlus;

    fn cfg() -> EngineConfig {
        EngineConfig { shards: 8, seed: 5 }
    }

    #[test]
    fn snapshot_is_a_faithful_point_in_time_copy() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        e.apply(&[(1, 10), (2, 20), (3, 30)]);
        let snap = e.snapshot();

        // Writer keeps going; the snapshot must not move.
        e.apply(&[(1, 100), (4, 1)]);
        assert_eq!(snap.estimate(1), Some(10.0));
        assert_eq!(snap.estimate(4), None);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.total_events(), 60);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        assert_eq!(snap.merged_total(&mut rng).unwrap().count(), 60);
        assert_eq!(e.estimate(1), Some(110.0), "writer advanced independently");
        assert_eq!(snap.iter().count(), 3);
        assert_eq!(snap.config(), cfg());
    }

    #[test]
    fn clones_share_frozen_shards() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        e.apply(&[(1, 1), (2, 2)]);
        let snap = e.snapshot();
        let replica = snap.clone();
        for (a, b) in snap.shards.iter().zip(&replica.shards) {
            assert!(Arc::ptr_eq(a, b), "clone must share, not copy, slabs");
        }
        assert_eq!(replica.estimate(2), Some(2.0));
    }

    #[test]
    fn freeze_shares_slabs_with_the_engine_until_written() {
        // The CoW contract itself: at freeze time no slab is copied (the
        // snapshot and engine share every shard); the first write to a
        // shard splits that shard and only that shard.
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k, 1)).collect();
        e.apply(&batch);
        let snap = e.snapshot();
        assert!(e.stats().last_freeze_ns > 0, "freeze duration recorded");
        for (live, frozen) in e.shards().iter().zip(&snap.shards) {
            assert!(Arc::ptr_eq(live, frozen), "freeze must share, not copy");
        }

        let written = e.shard_of(7);
        e.apply(&[(7, 5)]);
        for (idx, (live, frozen)) in e.shards().iter().zip(&snap.shards).enumerate() {
            assert_eq!(
                Arc::ptr_eq(live, frozen),
                idx != written,
                "only the written shard may split (shard {idx})"
            );
        }
        assert_eq!(snap.estimate(7), Some(1.0), "frozen value preserved");
        assert_eq!(e.estimate(7), Some(6.0), "writer advanced");
        assert_eq!(e.stats().dirty_shards, 1, "exactly one shard went dirty");
    }

    #[test]
    fn merged_aggregate_tracks_event_total_for_approximate_families() {
        let p = NyParams::new(0.2, 8).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k, 1_000)).collect();
        e.apply(&batch);
        let snap = e.snapshot();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let merged = snap.merged_total(&mut rng).unwrap();
        let exact = snap.total_events() as f64;
        let rel = (merged.estimate() - exact).abs() / exact;
        assert!(rel < 0.4, "merged aggregate rel err {rel}");
    }

    #[test]
    fn snapshot_state_bits_match_engine_stats() {
        let p = NyParams::new(0.25, 6).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        e.apply(&(0..200u64).map(|k| (k, k + 1)).collect::<Vec<_>>());
        let snap = e.snapshot();
        assert_eq!(snap.counter_state_bits(), e.stats().state_bits_total);
    }

    #[test]
    fn deep_snapshot_matches_cow_snapshot() {
        let p = NyParams::new(0.25, 6).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        e.apply(&(0..300u64).map(|k| (k, 3 * k + 1)).collect::<Vec<_>>());
        let cow = e.snapshot();
        let deep = e.snapshot_deep();
        assert_eq!(cow.len(), deep.len());
        assert_eq!(cow.total_events(), deep.total_events());
        for (key, counter) in cow.iter() {
            assert_eq!(deep.counter(key), Some(counter), "key {key}");
        }
        // Epochs advance one per freeze, in order.
        assert_eq!(deep.epoch(), cow.epoch() + 1);
    }

    /// Counts how many words a fold actually draws, to observe cache
    /// hits (a cached shard contributes zero merge draws).
    struct CountingSource<'a> {
        inner: &'a mut Xoshiro256PlusPlus,
        draws: u64,
    }

    impl ac_randkit::RandomSource for CountingSource<'_> {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn merged_total_reuses_clean_shard_folds_across_freezes() {
        use ac_core::MorrisCounter;
        let mut e = CounterEngine::new(MorrisCounter::new(0.25).unwrap(), cfg());
        let batch: Vec<(u64, u64)> = (0..2_000u64).map(|k| (k, 50)).collect();
        e.apply(&batch);

        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let snap1 = e.snapshot();
        let mut cold = CountingSource {
            inner: &mut rng,
            draws: 0,
        };
        let _ = snap1.merged_total(&mut cold).unwrap();
        let cold_draws = cold.draws;

        // Touch exactly one shard, freeze again: only that shard's fold
        // (plus the O(shards) cross-shard merge) recomputes.
        e.apply(&[(7, 5)]);
        let snap2 = e.snapshot();
        let mut warm = CountingSource {
            inner: &mut rng,
            draws: 0,
        };
        let total = snap2.merged_total(&mut warm).unwrap();
        assert!(
            warm.draws < cold_draws / 2,
            "warm fold drew {} vs cold {}",
            warm.draws,
            cold_draws
        );
        // And the estimate still tracks the exact total.
        let n = snap2.total_events() as f64;
        let rel = (total.estimate() - n).abs() / n;
        assert!(rel < 0.5, "merged relative error {rel}");
    }

    #[test]
    fn merged_total_cache_is_exact_for_exact_counters() {
        // With the deterministic exact merge the cache must be invisible:
        // every freeze's merged total equals the frozen event count.
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for round in 0..5u64 {
            e.apply(&[(round, 10 + round), (7 * round + 3, 1)]);
            let snap = e.snapshot();
            assert_eq!(
                snap.merged_total(&mut rng).unwrap().count(),
                snap.total_events(),
                "round {round}"
            );
        }
    }

    #[test]
    fn tiered_fold_reuses_clean_shard_folds_across_freezes() {
        use ac_core::CounterSpec;
        let template = CounterSpec::Morris { a: 0.25 }.build().unwrap();
        let mut e = CounterEngine::new(template, cfg());
        let batch: Vec<(u64, u64)> = (0..2_000u64).map(|k| (k, 50)).collect();
        e.apply(&batch);

        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let snap1 = e.snapshot();
        let mut cold = CountingSource {
            inner: &mut rng,
            draws: 0,
        };
        let _ = snap1.merged_estimate_tiered(1, &mut cold).unwrap();
        let cold_draws = cold.draws;

        // Touch exactly one shard, freeze again: only that shard's
        // per-tier fold recomputes.
        e.apply(&[(7, 5)]);
        let snap2 = e.snapshot();
        let mut warm = CountingSource {
            inner: &mut rng,
            draws: 0,
        };
        let est = snap2.merged_estimate_tiered(1, &mut warm).unwrap();
        assert!(
            warm.draws < cold_draws / 2,
            "warm tiered fold drew {} vs cold {}",
            warm.draws,
            cold_draws
        );
        let n = snap2.total_events() as f64;
        let rel = (est - n).abs() / n;
        assert!(rel < 0.5, "tiered estimate relative error {rel}");

        // A different ladder length is a different fold: no stale reuse.
        let wide = snap2.merged_estimate_tiered(3, &mut rng).unwrap();
        let rel = (wide - n).abs() / n;
        assert!(rel < 0.5, "wider-ladder estimate relative error {rel}");
    }

    #[test]
    fn tier_migrations_evict_stale_tiered_folds() {
        use ac_core::{CounterSpec, TierMove};
        let template = CounterSpec::Exact.build().unwrap();
        let mut e = CounterEngine::new(template, cfg());
        let batch: Vec<(u64, u64)> = (0..64u64).map(|k| (k, 12)).collect();
        e.apply(&batch);
        let ladder = [CounterSpec::Exact, CounterSpec::Csuros { mantissa_bits: 1 }];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);

        let snap1 = e.snapshot();
        let before = snap1.merged_estimate_tiered(2, &mut rng).unwrap();
        assert_eq!(before, 768.0, "all-exact engine sums exactly");

        // Migrate one key onto the coarse rung. Its exact count (12) is
        // not representable with a 1-bit mantissa, so the re-seeded
        // estimate moves — while the shard's `events` and `len` do not.
        // The fold must never serve the pre-migration cache entry.
        let moved = e
            .apply_migrations(&ladder, &[TierMove { key: 3, tier: 1 }])
            .unwrap();
        assert_eq!(moved, 1);
        let snap2 = e.snapshot();
        let after = snap2.merged_estimate_tiered(2, &mut rng).unwrap();
        let oracle: f64 = snap2
            .shards
            .iter()
            .flat_map(|s| s.entries_tagged())
            .map(|(_, c, _)| c.estimate())
            .sum();
        assert_eq!(after, oracle, "fold must match an uncached recompute");
        assert_ne!(after, before, "coarse rung must move the estimate");
    }

    #[test]
    fn empty_engine_snapshots_cleanly() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        let snap = e.snapshot();
        assert!(snap.is_empty());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        assert_eq!(snap.merged_total(&mut rng).unwrap().count(), 0);
    }
}
