//! The snapshot/serve layer: immutable, cheaply-cloneable read replicas.
//!
//! [`CounterEngine::snapshot`] freezes the engine at a point in time into
//! an [`EngineSnapshot`]: per-shard frozen slabs behind `Arc`s, plus the
//! cross-shard merged aggregate (folded once, at freeze time, through the
//! family's [`Mergeable`] law — Remark 2.4). After the freeze:
//!
//! * **queries never contend with writers** — the snapshot owns its data;
//!   the engine keeps mutating its own slabs. No lock is shared, so
//!   `estimate`/`merged_total` latency is flat no matter how hard the
//!   write path is running;
//! * **clones are O(shards) pointer bumps** — hand a replica to every
//!   serving thread;
//! * **the checkpoint layer serializes snapshots**, not live engines, so
//!   durability rides the same freeze and the write path never stalls for
//!   I/O (see [`crate::checkpoint_snapshot`]).
//!
//! The freeze itself deep-clones the touched slabs — `O(keys)` compact
//! counter states, the one moment writer and reader briefly share data.
//! At the paper's state sizes that is a copy of a few bits per key.

use crate::registry::{CounterEngine, EngineConfig};
use crate::shard::{route, Shard};
use ac_core::{ApproxCounter, CoreError, Mergeable};
use ac_randkit::RandomSource;
use std::sync::Arc;

/// An immutable point-in-time replica of a [`CounterEngine`].
///
/// Created by [`CounterEngine::snapshot`]; cloning is cheap (shared
/// frozen shards). Every query runs lock-free against the frozen data.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<C> {
    pub(crate) shards: Vec<Arc<Shard<C>>>,
    pub(crate) template: C,
    config: EngineConfig,
    salt: u64,
    merged: C,
    keys: usize,
    events: u64,
}

impl<C: ApproxCounter + Clone> CounterEngine<C> {
    /// Freezes a read replica of the engine's current state, folding the
    /// cross-shard merged aggregate as part of the freeze (`rng` drives
    /// the merge law's randomness; the engine itself is untouched).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::MergeMismatch`] from the aggregate fold —
    /// unreachable when all counters are clones of one template, as here.
    pub fn snapshot(&self, rng: &mut dyn RandomSource) -> Result<EngineSnapshot<C>, CoreError>
    where
        C: Mergeable,
    {
        let merged = self.merged_total(rng)?;
        Ok(EngineSnapshot {
            shards: self.shards().iter().map(|s| Arc::new(s.clone())).collect(),
            template: self.template().clone(),
            config: self.config(),
            salt: self.salt(),
            merged,
            keys: self.len(),
            events: self.total_events(),
        })
    }
}

impl<C: ApproxCounter + Clone> EngineSnapshot<C> {
    /// The estimate for `key` at freeze time, or `None` if the key had
    /// never been touched.
    #[must_use]
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.counter(key).map(ApproxCounter::estimate)
    }

    /// Read-only access to `key`'s frozen counter.
    #[must_use]
    pub fn counter(&self, key: u64) -> Option<&C> {
        self.shards[route(self.salt, self.shards.len(), key)].get(key)
    }

    /// The cross-shard merged aggregate, folded once at freeze time: a
    /// single counter distributed as if it had processed the whole stream
    /// (Remark 2.4). Querying it is a field read — no per-query merge, no
    /// writer contention.
    #[must_use]
    pub fn merged_total(&self) -> &C {
        &self.merged
    }

    /// Distinct keys at freeze time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys
    }

    /// True when the engine had no keys at freeze time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Exact total increments at freeze time.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.events
    }

    /// The engine configuration the snapshot was frozen from (embedded in
    /// checkpoints as part of the engine's identity).
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Iterates all frozen `(key, counter)` pairs, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &C)> {
        self.shards.iter().flat_map(|s| s.entries())
    }

    /// Sum of frozen counter register bits — the snapshot-side twin of
    /// [`EngineStats::counter_state_bits`](crate::EngineStats::counter_state_bits).
    #[must_use]
    pub fn counter_state_bits(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.counters())
            .map(ac_bitio::StateBits::state_bits)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, NelsonYuCounter, NyParams};
    use ac_randkit::Xoshiro256PlusPlus;

    fn cfg() -> EngineConfig {
        EngineConfig { shards: 8, seed: 5 }
    }

    #[test]
    fn snapshot_is_a_faithful_point_in_time_copy() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        e.apply(&[(1, 10), (2, 20), (3, 30)]);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let snap = e.snapshot(&mut rng).unwrap();

        // Writer keeps going; the snapshot must not move.
        e.apply(&[(1, 100), (4, 1)]);
        assert_eq!(snap.estimate(1), Some(10.0));
        assert_eq!(snap.estimate(4), None);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.total_events(), 60);
        assert_eq!(snap.merged_total().count(), 60);
        assert_eq!(e.estimate(1), Some(110.0), "writer advanced independently");
        assert_eq!(snap.iter().count(), 3);
        assert_eq!(snap.config(), cfg());
    }

    #[test]
    fn clones_share_frozen_shards() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        e.apply(&[(1, 1), (2, 2)]);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let snap = e.snapshot(&mut rng).unwrap();
        let replica = snap.clone();
        for (a, b) in snap.shards.iter().zip(&replica.shards) {
            assert!(Arc::ptr_eq(a, b), "clone must share, not copy, slabs");
        }
        assert_eq!(replica.estimate(2), Some(2.0));
    }

    #[test]
    fn merged_aggregate_tracks_event_total_for_approximate_families() {
        let p = NyParams::new(0.2, 8).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k, 1_000)).collect();
        e.apply(&batch);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let snap = e.snapshot(&mut rng).unwrap();
        let exact = snap.total_events() as f64;
        let rel = (snap.merged_total().estimate() - exact).abs() / exact;
        assert!(rel < 0.4, "merged aggregate rel err {rel}");
    }

    #[test]
    fn snapshot_state_bits_match_engine_stats() {
        let p = NyParams::new(0.25, 6).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        e.apply(&(0..200u64).map(|k| (k, k + 1)).collect::<Vec<_>>());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let snap = e.snapshot(&mut rng).unwrap();
        assert_eq!(snap.counter_state_bits(), e.stats().counter_state_bits);
    }

    #[test]
    fn empty_engine_snapshots_cleanly() {
        let e = CounterEngine::new(ExactCounter::new(), cfg());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let snap = e.snapshot(&mut rng).unwrap();
        assert!(snap.is_empty());
        assert_eq!(snap.merged_total().count(), 0);
    }
}
