//! The snapshot/serve layer: immutable, cheaply-cloneable read replicas.
//!
//! [`CounterEngine::snapshot`] freezes the engine at a point in time into
//! an [`EngineSnapshot`] by cloning the per-shard `Arc`s — `O(shards)`
//! pointer bumps, no counter is copied at freeze time. The engine keeps
//! writing through [`Arc::make_mut`]: the first post-freeze write to a
//! shard clones that one slab (copy-on-write), so the freeze's true cost
//! is `O(dirty shards)`, paid lazily by the writers that actually
//! collide with the frozen era. After the freeze:
//!
//! * **queries never contend with writers** — the snapshot owns (or
//!   still shares, immutably) its data. No lock is shared, so
//!   `estimate` latency is flat no matter how hard the write path runs;
//! * **clones are O(shards) pointer bumps** — hand a replica to every
//!   serving thread;
//! * **the checkpoint layer serializes snapshots**, not live engines, so
//!   durability rides the same freeze and the write path never stalls for
//!   I/O (see [`crate::checkpoint_snapshot`] and
//!   [`crate::checkpoint_delta`]).
//!
//! The cross-shard merged aggregate (Remark 2.4) is *not* folded at
//! freeze time any more — folding is `O(keys)` and would put the one
//! expensive scan back on the freeze path. [`EngineSnapshot::merged_total`]
//! computes it on demand, on whichever reader thread wants it.
//!
//! [`CounterEngine::snapshot_deep`] keeps the PR 3 stop-the-world
//! `O(keys)` deep-clone freeze alive as a benchmark baseline and as the
//! oracle for the CoW-equivalence property tests.

use crate::registry::{CounterEngine, EngineConfig};
use crate::shard::{route, Shard};
use ac_core::{ApproxCounter, CoreError, Mergeable};
use ac_randkit::RandomSource;
use std::sync::Arc;
use std::time::Instant;

/// An immutable point-in-time replica of a [`CounterEngine`].
///
/// Created by [`CounterEngine::snapshot`]; cloning is cheap (shared
/// frozen shards). Every query runs lock-free against the frozen data.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<C> {
    pub(crate) shards: Vec<Arc<Shard<C>>>,
    pub(crate) template: C,
    config: EngineConfig,
    salt: u64,
    /// The freeze epoch this replica belongs to; the delta-checkpoint
    /// layer compares shard dirty epochs against parents through it.
    epoch: u64,
    keys: usize,
    events: u64,
}

impl<C: ApproxCounter + Clone> CounterEngine<C> {
    /// Freezes a read replica of the engine's current state: `O(shards)`
    /// `Arc` clones plus an `O(shards)` metadata scan. No counter is
    /// copied here; shards the writer touches after this call are cloned
    /// lazily, one shard at a time, by the write path (copy-on-write).
    ///
    /// Takes `&mut self` because a freeze advances the engine's epoch
    /// clock (and records its own duration for
    /// [`EngineStats::last_freeze_ns`](crate::EngineStats::last_freeze_ns)).
    pub fn snapshot(&mut self) -> EngineSnapshot<C> {
        let start = Instant::now();
        let shards: Vec<Arc<Shard<C>>> = self.shards().to_vec();
        let snap = self.freeze_parts(shards, start);
        debug_assert_eq!(snap.epoch + 1, self.epoch());
        snap
    }

    /// The PR 3 freeze: deep-clones every slab, `O(keys)`, stopping the
    /// world for the duration. Kept as the measured baseline the
    /// copy-on-write path is benchmarked against, and as the oracle in
    /// the CoW-equivalence property tests — not for production use.
    pub fn snapshot_deep(&mut self) -> EngineSnapshot<C> {
        let start = Instant::now();
        let shards: Vec<Arc<Shard<C>>> = self
            .shards()
            .iter()
            .map(|s| Arc::new(s.as_ref().clone()))
            .collect();
        self.freeze_parts(shards, start)
    }

    fn freeze_parts(&mut self, shards: Vec<Arc<Shard<C>>>, start: Instant) -> EngineSnapshot<C> {
        let keys = shards.iter().map(|s| s.len()).sum();
        let events = shards.iter().map(|s| s.events()).sum();
        let snap = EngineSnapshot {
            shards,
            template: self.template().clone(),
            config: self.config(),
            salt: self.salt(),
            epoch: 0, // patched below, after the freeze is timed
            keys,
            events,
        };
        let freeze_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let epoch = self.note_freeze(freeze_ns);
        EngineSnapshot { epoch, ..snap }
    }
}

impl<C: ApproxCounter + Clone> EngineSnapshot<C> {
    /// The estimate for `key` at freeze time, or `None` if the key had
    /// never been touched.
    #[must_use]
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.counter(key).map(ApproxCounter::estimate)
    }

    /// Read-only access to `key`'s frozen counter.
    #[must_use]
    pub fn counter(&self, key: u64) -> Option<&C> {
        self.shards[route(self.salt, self.shards.len(), key)].get(key)
    }

    /// Folds the cross-shard merged aggregate: a single counter
    /// distributed as if it had processed the whole frozen stream
    /// (Remark 2.4), agreeing with [`EngineSnapshot::total_events`]
    /// within the family's `(ε, δ)` guarantee. `O(keys)` — run it on a
    /// reader thread; the freeze itself never pays this fold.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::MergeMismatch`] from the fold —
    /// unreachable when all counters are clones of one template, as here.
    pub fn merged_total(&self, rng: &mut dyn RandomSource) -> Result<C, CoreError>
    where
        C: Mergeable,
    {
        let mut total = self.template.clone();
        total.reset();
        for shard in &self.shards {
            for c in shard.counters() {
                total.merge_from(c, rng)?;
            }
        }
        Ok(total)
    }

    /// Distinct keys at freeze time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys
    }

    /// True when the engine had no keys at freeze time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Exact total increments at freeze time.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.events
    }

    /// The engine configuration the snapshot was frozen from (embedded in
    /// checkpoints as part of the engine's identity).
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The freeze epoch this replica was cut at (monotone per engine;
    /// checkpoint headers embed it to order delta chains).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterates all frozen `(key, counter)` pairs, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &C)> {
        self.shards.iter().flat_map(|s| s.entries())
    }

    /// Sum of frozen counter register bits — the snapshot-side twin of
    /// [`EngineStats::counter_state_bits`](crate::EngineStats::counter_state_bits).
    #[must_use]
    pub fn counter_state_bits(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.counters())
            .map(ac_bitio::StateBits::state_bits)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, NelsonYuCounter, NyParams};
    use ac_randkit::Xoshiro256PlusPlus;

    fn cfg() -> EngineConfig {
        EngineConfig { shards: 8, seed: 5 }
    }

    #[test]
    fn snapshot_is_a_faithful_point_in_time_copy() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        e.apply(&[(1, 10), (2, 20), (3, 30)]);
        let snap = e.snapshot();

        // Writer keeps going; the snapshot must not move.
        e.apply(&[(1, 100), (4, 1)]);
        assert_eq!(snap.estimate(1), Some(10.0));
        assert_eq!(snap.estimate(4), None);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.total_events(), 60);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        assert_eq!(snap.merged_total(&mut rng).unwrap().count(), 60);
        assert_eq!(e.estimate(1), Some(110.0), "writer advanced independently");
        assert_eq!(snap.iter().count(), 3);
        assert_eq!(snap.config(), cfg());
    }

    #[test]
    fn clones_share_frozen_shards() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        e.apply(&[(1, 1), (2, 2)]);
        let snap = e.snapshot();
        let replica = snap.clone();
        for (a, b) in snap.shards.iter().zip(&replica.shards) {
            assert!(Arc::ptr_eq(a, b), "clone must share, not copy, slabs");
        }
        assert_eq!(replica.estimate(2), Some(2.0));
    }

    #[test]
    fn freeze_shares_slabs_with_the_engine_until_written() {
        // The CoW contract itself: at freeze time no slab is copied (the
        // snapshot and engine share every shard); the first write to a
        // shard splits that shard and only that shard.
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k, 1)).collect();
        e.apply(&batch);
        let snap = e.snapshot();
        assert!(e.stats().last_freeze_ns > 0, "freeze duration recorded");
        for (live, frozen) in e.shards().iter().zip(&snap.shards) {
            assert!(Arc::ptr_eq(live, frozen), "freeze must share, not copy");
        }

        let written = e.shard_of(7);
        e.apply(&[(7, 5)]);
        for (idx, (live, frozen)) in e.shards().iter().zip(&snap.shards).enumerate() {
            assert_eq!(
                Arc::ptr_eq(live, frozen),
                idx != written,
                "only the written shard may split (shard {idx})"
            );
        }
        assert_eq!(snap.estimate(7), Some(1.0), "frozen value preserved");
        assert_eq!(e.estimate(7), Some(6.0), "writer advanced");
        assert_eq!(e.stats().dirty_shards, 1, "exactly one shard went dirty");
    }

    #[test]
    fn merged_aggregate_tracks_event_total_for_approximate_families() {
        let p = NyParams::new(0.2, 8).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        let batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k, 1_000)).collect();
        e.apply(&batch);
        let snap = e.snapshot();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let merged = snap.merged_total(&mut rng).unwrap();
        let exact = snap.total_events() as f64;
        let rel = (merged.estimate() - exact).abs() / exact;
        assert!(rel < 0.4, "merged aggregate rel err {rel}");
    }

    #[test]
    fn snapshot_state_bits_match_engine_stats() {
        let p = NyParams::new(0.25, 6).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        e.apply(&(0..200u64).map(|k| (k, k + 1)).collect::<Vec<_>>());
        let snap = e.snapshot();
        assert_eq!(snap.counter_state_bits(), e.stats().counter_state_bits);
    }

    #[test]
    fn deep_snapshot_matches_cow_snapshot() {
        let p = NyParams::new(0.25, 6).unwrap();
        let mut e = CounterEngine::new(NelsonYuCounter::new(p), cfg());
        e.apply(&(0..300u64).map(|k| (k, 3 * k + 1)).collect::<Vec<_>>());
        let cow = e.snapshot();
        let deep = e.snapshot_deep();
        assert_eq!(cow.len(), deep.len());
        assert_eq!(cow.total_events(), deep.total_events());
        for (key, counter) in cow.iter() {
            assert_eq!(deep.counter(key), Some(counter), "key {key}");
        }
        // Epochs advance one per freeze, in order.
        assert_eq!(deep.epoch(), cow.epoch() + 1);
    }

    #[test]
    fn empty_engine_snapshots_cleanly() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg());
        let snap = e.snapshot();
        assert!(snap.is_empty());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        assert_eq!(snap.merged_total(&mut rng).unwrap().count(), 0);
    }
}
