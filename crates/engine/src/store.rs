//! The [`Store`]: the engine pipeline under one roof, as a running
//! service.
//!
//! The layered API (ingest → engine → snapshot → checkpoint) stays public
//! as the expert surface, but deploying it means hand-wiring four layers,
//! fixing the counter family at compile time, and writing your own crash
//! recovery. The store is the service-shaped answer:
//!
//! * **one builder** — [`Store::builder`] takes a runtime
//!   [`CounterSpec`] (family + parameters as data) plus shard, ingest,
//!   and durability knobs, and [`StoreBuilder::start`] yields a running
//!   service that owns the applier loop and the background checkpointer
//!   internally;
//! * **handles, not layers** — cloneable [`StoreWriter`]s (wrapping
//!   [`IngestProducer`]s, each with its own producer id and sequence
//!   numbers) and epoch-pinned [`StoreReader`]s (wrapping published
//!   [`EngineSnapshot`]s with `estimate` / `merged_total`);
//! * **crash recovery** — [`Store::open`] reads the directory's
//!   [`Manifest`], rebuilds the family from the recorded spec, discovers
//!   the newest intact base + delta chain (falling back past a truncated
//!   or corrupt tail), and resumes counters, shard RNG streams, and the
//!   epoch clock bit-exactly; the [`RecoveryReport`] carries each
//!   producer's last-applied sequence number so callers can replay
//!   exactly once;
//! * **one error type** — every fallible path returns
//!   [`EngineError`].
//!
//! ```
//! use ac_core::CounterSpec;
//! use ac_engine::Store;
//!
//! let store = Store::builder(CounterSpec::NelsonYu { eps: 0.2, delta_log2: 8 })
//!     .with_shards(8)
//!     .with_snapshot_every_events(1_000)
//!     .start()
//!     .unwrap();
//! let mut writer = store.writer();
//! for key in 0..100u64 {
//!     writer.record(key, 1_000);
//! }
//! writer.flush().unwrap();
//! let report = store.close().unwrap();
//! assert_eq!(report.stats.events, 100_000);
//! ```

use crate::checkpoint::restore_checkpoint_chain_with_workers;
use crate::checkpointer::{
    BackgroundCheckpointer, CheckpointerConfig, CheckpointerProbe, CheckpointerReport,
    CheckpointerStats,
};
use crate::error::EngineError;
#[cfg(test)]
use crate::ingest::BackpressurePolicy;
use crate::ingest::{
    CheckpointCadence, IngestConfig, IngestProducer, IngestQueue, IngestStats, ProducerMark,
    SendError,
};
use crate::manifest::{Manifest, ManifestInfo, ManifestTiering};
use crate::registry::{CounterEngine, EngineConfig, EngineStats};
use crate::snapshot::EngineSnapshot;
use ac_core::{
    ApproxCounter, BudgetController, CounterFamily, CounterSpec, ExactCounter, TierPolicy,
};
use ac_randkit::{mix64, RandomSource, SplitMix64, Xoshiro256PlusPlus};
use ac_streams::SpaceSaving;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Runtime knobs shared by [`StoreBuilder`] and [`Store::open_with`]:
/// everything about *how* the service runs, none of it part of the
/// engine's durable identity (which is the [`CounterSpec`] +
/// [`EngineConfig`] recorded in the manifest).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StoreOptions {
    /// Ingest queue configuration.
    pub ingest: IngestConfig,
    /// Applied-event cadence between published read snapshots. Each
    /// publish is an `O(shards)` copy-on-write freeze whose splits are
    /// amortized into subsequent writes; smaller values mean fresher
    /// readers, larger values less copy-on-write traffic.
    pub snapshot_every_events: u64,
    /// Applied-event cadence between durable checkpoint frames (only
    /// meaningful with a durability directory).
    pub checkpoint_every_events: u64,
    /// Deltas per base before the checkpointer rebases.
    pub max_deltas_per_base: usize,
    /// Slots in the applier's SpaceSaving hot-key detector (tiered
    /// stores only). A few times the number of keys a migration round
    /// can plausibly promote is enough: the detector only has to rank
    /// the head of the distribution, not hold the tail.
    pub detector_slots: usize,
    /// When set, the checkpointer's off-thread compactor folds the live
    /// base + deltas chain into a fresh base whenever it holds more than
    /// this many frames — bounding recovery time by state size instead
    /// of history (see
    /// [`CheckpointerConfig::with_max_chain_len`](crate::CheckpointerConfig::with_max_chain_len)).
    pub compact_max_chain_len: Option<usize>,
    /// Byte-size companion trigger for the compactor (see
    /// [`CheckpointerConfig::with_max_chain_bytes`](crate::CheckpointerConfig::with_max_chain_bytes)).
    pub compact_max_chain_bytes: Option<u64>,
    /// How long superseded frame files linger after a compaction commit
    /// stops referencing them (see
    /// [`CheckpointerConfig::with_retention`](crate::CheckpointerConfig::with_retention)).
    pub retention: std::time::Duration,
}

impl StoreOptions {
    /// The default runtime knobs (publish every 65 536 events,
    /// checkpoint every 1 000 000, rebase after 15 deltas, 1024
    /// detector slots).
    #[must_use]
    pub fn new() -> Self {
        Self {
            ingest: IngestConfig::new(),
            snapshot_every_events: 65_536,
            checkpoint_every_events: 1_000_000,
            max_deltas_per_base: 15,
            detector_slots: 1024,
            compact_max_chain_len: None,
            compact_max_chain_bytes: None,
            retention: std::time::Duration::ZERO,
        }
    }

    /// Sets the ingest queue configuration.
    #[must_use]
    pub fn with_ingest(mut self, ingest: IngestConfig) -> Self {
        self.ingest = ingest;
        self
    }

    /// Sets the read-snapshot publish cadence, in applied events.
    #[must_use]
    pub fn with_snapshot_every_events(mut self, every: u64) -> Self {
        self.snapshot_every_events = every;
        self
    }

    /// Sets the checkpoint cadence, in applied events.
    #[must_use]
    pub fn with_checkpoint_every_events(mut self, every: u64) -> Self {
        self.checkpoint_every_events = every;
        self
    }

    /// Sets how many deltas may follow a base before rebasing.
    #[must_use]
    pub fn with_max_deltas_per_base(mut self, max: usize) -> Self {
        self.max_deltas_per_base = max;
        self
    }

    /// Sets the hot-key detector's SpaceSaving slot count (tiered
    /// stores only).
    #[must_use]
    pub fn with_detector_slots(mut self, slots: usize) -> Self {
        self.detector_slots = slots;
        self
    }

    /// Compacts the durable chain off-thread once it holds more than
    /// `max` frames (durable stores only).
    #[must_use]
    pub fn with_max_chain_len(mut self, max: usize) -> Self {
        self.compact_max_chain_len = Some(max);
        self
    }

    /// Compacts the durable chain off-thread once its frame files
    /// exceed `max` total bytes (durable stores only).
    #[must_use]
    pub fn with_max_chain_bytes(mut self, max: u64) -> Self {
        self.compact_max_chain_bytes = Some(max);
        self
    }

    /// Keeps superseded frame files for `ttl` after a compaction commit
    /// stops referencing them (default: pruned immediately).
    #[must_use]
    pub fn with_retention(mut self, ttl: std::time::Duration) -> Self {
        self.retention = ttl;
        self
    }
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Configures and starts a [`Store`]; created by [`Store::builder`].
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    spec: CounterSpec,
    engine: EngineConfig,
    opts: StoreOptions,
    durability: Option<PathBuf>,
    tiering: Option<(TierPolicy, u64)>,
}

impl StoreBuilder {
    /// Sets the shard count (part of the engine's durable identity).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.engine = self.engine.with_shards(shards);
        self
    }

    /// Sets the RNG/routing seed (part of the engine's durable identity).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.engine = self.engine.with_seed(seed);
        self
    }

    /// Sets the ingest configuration (per-producer ring capacity, batch
    /// size, and the [`BackpressurePolicy`](crate::BackpressurePolicy)).
    #[must_use]
    pub fn with_ingest(mut self, ingest: IngestConfig) -> Self {
        self.opts.ingest = ingest;
        self
    }

    /// Sets the read-snapshot publish cadence, in applied events.
    #[must_use]
    pub fn with_snapshot_every_events(mut self, every: u64) -> Self {
        self.opts.snapshot_every_events = every;
        self
    }

    /// Enables durability: checkpoint frames and the store manifest are
    /// written under `dir` (created if absent), and [`Store::open`] can
    /// later resume from it.
    #[must_use]
    pub fn with_durability(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability = Some(dir.into());
        self
    }

    /// Sets the checkpoint cadence, in applied events.
    #[must_use]
    pub fn with_checkpoint_every_events(mut self, every: u64) -> Self {
        self.opts.checkpoint_every_events = every;
        self
    }

    /// Sets how many deltas may follow a base before rebasing.
    #[must_use]
    pub fn with_max_deltas_per_base(mut self, max: usize) -> Self {
        self.opts.max_deltas_per_base = max;
        self
    }

    /// Sets the hot-key detector's SpaceSaving slot count (meaningful
    /// with [`StoreBuilder::with_tiering`]).
    #[must_use]
    pub fn with_detector_slots(mut self, slots: usize) -> Self {
        self.opts.detector_slots = slots;
        self
    }

    /// Compacts the durable chain off-thread once it holds more than
    /// `max` frames; see [`StoreOptions::compact_max_chain_len`].
    #[must_use]
    pub fn with_max_chain_len(mut self, max: usize) -> Self {
        self.opts.compact_max_chain_len = Some(max);
        self
    }

    /// Compacts the durable chain off-thread once its frame files
    /// exceed `max` total bytes; see
    /// [`StoreOptions::compact_max_chain_bytes`].
    #[must_use]
    pub fn with_max_chain_bytes(mut self, max: u64) -> Self {
        self.opts.compact_max_chain_bytes = Some(max);
        self
    }

    /// Keeps superseded frame files for `ttl` after compaction; see
    /// [`StoreOptions::retention`].
    #[must_use]
    pub fn with_retention(mut self, ttl: std::time::Duration) -> Self {
        self.opts.retention = ttl;
        self
    }

    /// Enables **tiered accuracy**: keys live on `policy`'s ladder of
    /// counter specs (rung 0 — which must equal the store's
    /// [`CounterSpec`] — is where every key starts), and the applier
    /// thread migrates hot keys up / cold keys down between ingest
    /// bursts so total counter state stays under `budget_bits`.
    ///
    /// A SpaceSaving detector taps the applied stream; each
    /// snapshot-cadence boundary runs one
    /// [`BudgetController::plan`] round and applies the estimate-
    /// preserving migrations before the replica is published. With
    /// durability, checkpoints become version-3 frames carrying the
    /// per-key tier tags, the manifest pins the ladder and budget, and
    /// [`Store::open`] restores tier assignments bit-exactly.
    #[must_use]
    pub fn with_tiering(mut self, policy: TierPolicy, budget_bits: u64) -> Self {
        self.tiering = Some((policy, budget_bits));
        self
    }

    /// Builds the engine from the spec and starts the service (applier
    /// thread, and — with durability — the background checkpointer and
    /// manifest).
    ///
    /// # Errors
    ///
    /// [`EngineError::Core`] for an invalid spec,
    /// [`EngineError::ManifestCorrupt`] when the durability directory
    /// already belongs to a different deployment, and I/O errors from
    /// directory creation.
    ///
    /// # Panics
    ///
    /// Panics if a cadence or ingest capacity is zero.
    pub fn start(self) -> Result<Store, EngineError> {
        let template = self.spec.build()?;
        let engine = CounterEngine::new(template, self.engine);
        let tiering = self
            .tiering
            .map(|(policy, budget_bits)| -> Result<TierSetup, EngineError> {
                if *policy.default_spec() != self.spec {
                    return Err(EngineError::Core(ac_core::CoreError::InvalidState {
                        what: "tier ladder's default rung must be the store's counter spec",
                    }));
                }
                TierSetup::new(policy, budget_bits, self.opts.detector_slots)
            })
            .transpose()?;
        let (durability, lock) = match self.durability {
            None => (None, None),
            Some(dir) => {
                std::fs::create_dir_all(&dir)?;
                let lock = DirLock::acquire(&dir)?;
                let manifest_tiering = tiering.as_ref().map(TierSetup::manifest_tiering);
                Manifest::ensure(&dir, &self.spec, &self.engine, manifest_tiering.as_ref())?;
                let session = Manifest::load(&dir)?.next_session();
                (Some((dir, session)), Some(lock))
            }
        };
        Ok(Store::launch(
            self.spec,
            self.engine,
            self.opts,
            durability,
            engine,
            None,
            lock,
            tiering,
        ))
    }
}

/// What [`Store::open`] found and did; see the module docs on recovery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// The durability directory that was opened.
    pub directory: PathBuf,
    /// Frames listed (intact) in the manifest.
    pub frames_in_manifest: usize,
    /// Frames of the chosen chain actually folded into the engine.
    pub frames_used: usize,
    /// Manifest frames *after* the restored tip that could not be used
    /// (truncated/corrupt/missing tail, or frames of an abandoned
    /// chain). Non-zero means the store resumed from an earlier moment
    /// than the newest frame claims — exactly the window
    /// [`RecoveryReport::last_applied`] lets producers replay.
    pub frames_skipped: usize,
    /// Exact events in the restored engine.
    pub events: u64,
    /// Distinct keys in the restored engine.
    pub keys: usize,
    /// Freeze epoch of the restored tip (the resumed engine's clock
    /// continues at `epoch + 1`).
    pub epoch: u64,
    /// Per-producer sequence marks at the restored tip's freeze: for
    /// each producer, `applied_seq` is the last batch the restored state
    /// contains — replay everything after it for exactly-once recovery.
    pub last_applied: Vec<ProducerMark>,
    /// The writer session this reopened store records frames under.
    pub session: u64,
}

/// A point-in-time summary of the whole service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StoreStats {
    /// Engine stats as of the last published snapshot (with ingest and
    /// checkpointer diagnostics folded in at publish time).
    pub engine: EngineStats,
    /// Live ingest-layer stats.
    pub ingest: IngestStats,
    /// Live checkpointer stats (durable stores only).
    pub checkpointer: Option<CheckpointerStats>,
    /// The tiering bit budget (tiered stores only). Compare against
    /// [`EngineStats::state_bits_total`] — the engine gauge rides in
    /// [`StoreStats::engine`], along with the per-tier key counts.
    pub tier_budget_bits: Option<u64>,
}

/// What [`Store::close`] returns: the final engine summary and, for
/// durable stores, the full checkpoint write history.
#[derive(Debug)]
#[non_exhaustive]
pub struct StoreReport {
    /// Final engine stats (ingest diagnostics folded in).
    pub stats: EngineStats,
    /// Every checkpoint frame written, in order (durable stores only).
    pub checkpoints: Option<CheckpointerReport>,
}

/// File name of the single-writer lock inside a durability directory.
const LOCK_FILE: &str = "store.lock";

/// An advisory single-writer lock over a durability directory: a
/// `store.lock` file holding the owner's pid, created exclusively and
/// removed on drop. Two live stores over one directory would clobber
/// each other's frame files and interleave manifest lines, so the
/// second acquirer gets [`EngineError::StoreBusy`]. A lock left by a
/// crashed process is detected by pid liveness and cleared (liveness
/// probing is Linux-`/proc`-based; elsewhere a foreign lock is treated
/// as stale — advisory, like the rest of the scheme).
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        false
    }
}

impl DirLock {
    fn acquire(dir: &Path) -> Result<Self, EngineError> {
        let path = dir.join(LOCK_FILE);
        for _ in 0..16 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write as _;
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid_alive(pid) => {
                            return Err(EngineError::StoreBusy { path, pid })
                        }
                        // Stale (dead owner) or unreadable: clear, retry.
                        _ => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(EngineError::StoreBusy { path, pid: 0 })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Everything the applier thread needs to run tier migrations: the
/// planner, the ladder's built templates (also handed to the
/// checkpointer so frames serialize as version 3), the SpaceSaving
/// detector fed from the ingest tap, and the resident map of keys
/// currently above the default tier (rebuilt from the engine's tier
/// tags on recovery — migrations only ever run on this thread, so the
/// map stays exact).
struct TierSetup {
    controller: BudgetController,
    templates: Vec<CounterFamily>,
    detector: SpaceSaving<ExactCounter>,
    rng: SplitMix64,
    resident: HashMap<u64, u8>,
}

impl std::fmt::Debug for TierSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierSetup")
            .field("controller", &self.controller)
            .field("resident_keys", &self.resident.len())
            .finish_non_exhaustive()
    }
}

impl TierSetup {
    fn new(
        policy: TierPolicy,
        budget_bits: u64,
        detector_slots: usize,
    ) -> Result<Self, EngineError> {
        let templates = policy.templates()?;
        let controller = BudgetController::new(policy, budget_bits)?;
        Ok(Self {
            controller,
            templates,
            // The detector needs no entropy for exact slot counters, but
            // the trait takes a source; any fixed seed keeps the applier
            // deterministic for a given arrival order.
            detector: SpaceSaving::new(detector_slots, &ExactCounter::new()),
            rng: SplitMix64::new(0x7157_0000_D1CE_C7ED),
            resident: HashMap::new(),
        })
    }

    fn manifest_tiering(&self) -> ManifestTiering {
        ManifestTiering {
            ladder: self.controller.policy().specs().to_vec(),
            budget_bits: self.controller.budget_bits(),
        }
    }

    /// Feeds one applied batch to the hot-key detector (the ingest tap).
    fn observe(&mut self, pairs: &[(u64, u64)]) {
        for &(key, delta) in pairs {
            self.detector.offer_by(key, delta, &mut self.rng);
        }
    }

    /// One migration round, run between ingest bursts while the engine
    /// is quiescent: rank the window's heavy hitters, close the detector
    /// epoch, plan promotions/demotions under the budget, and apply the
    /// estimate-preserving migrations.
    fn round(&mut self, engine: &mut CounterEngine<CounterFamily>) {
        let hot: Vec<(u64, f64)> = self
            .detector
            .report()
            .into_iter()
            .map(|h| (h.item, h.estimate))
            .collect();
        let _ = self.detector.decay();
        let resident: Vec<(u64, u8, f64)> = self
            .resident
            .iter()
            .map(|(&key, &tier)| {
                let est = engine.counter(key).map_or(0.0, ApproxCounter::estimate);
                (key, tier, est)
            })
            .collect();
        let plan = self
            .controller
            .plan(engine.state_bits_total(), &hot, &resident);
        if plan.is_empty() {
            return;
        }
        engine
            .apply_migrations(self.controller.policy().specs(), &plan.moves)
            .expect("planned tier moves stay inside the ladder");
        for m in &plan.moves {
            if m.tier == 0 {
                self.resident.remove(&m.key);
            } else {
                self.resident.insert(m.key, m.tier);
            }
        }
    }
}

/// State shared between the service, its applier thread, and every
/// reader handle.
#[derive(Debug)]
struct Shared {
    /// The newest published read replica.
    snap: RwLock<Arc<EngineSnapshot<CounterFamily>>>,
    /// Engine stats as of the newest publish.
    stats: Mutex<EngineStats>,
    /// Whether shutdown should cut a final durable frame (`close`) or
    /// leave the disk exactly as the crash left it (`kill`).
    finalize: AtomicBool,
}

/// Publishes a fresh read replica + stats snapshot. Runs on the applier
/// thread at batch boundaries (and once at launch / shutdown).
fn publish(
    shared: &Shared,
    engine: &mut CounterEngine<CounterFamily>,
    queue: &IngestQueue,
    probe: Option<&CheckpointerProbe>,
) {
    let snap = engine.snapshot();
    let mut stats = engine.stats().with_ingest(&queue.stats());
    if let Some(p) = probe {
        stats = stats.with_checkpointer(&p.stats());
    }
    *shared.snap.write().expect("snapshot slot") = Arc::new(snap);
    *shared.stats.lock().expect("stats slot") = stats;
}

/// The running service: one facade over ingest, the sharded engine,
/// published read replicas, and (optionally) durable checkpoints with a
/// crash-recovery manifest. See the module docs.
#[derive(Debug)]
pub struct Store {
    spec: CounterSpec,
    config: EngineConfig,
    queue: IngestQueue,
    shared: Arc<Shared>,
    #[allow(clippy::type_complexity)]
    applier: Option<JoinHandle<(CounterEngine<CounterFamily>, Option<CheckpointerReport>)>>,
    probe: Option<CheckpointerProbe>,
    directory: Option<PathBuf>,
    recovery: Option<RecoveryReport>,
    tier_budget_bits: Option<u64>,
    /// The single-writer directory lock; released (in `Drop`, after the
    /// applier joins) when the store shuts down — including `kill`, so
    /// a same-process reopen works; a *real* crash leaves the file and
    /// the staleness check clears it.
    _lock: Option<DirLock>,
}

impl Store {
    /// Starts configuring a new store for the given runtime family.
    #[must_use]
    pub fn builder(spec: CounterSpec) -> StoreBuilder {
        StoreBuilder {
            spec,
            engine: EngineConfig::new(),
            opts: StoreOptions::new(),
            durability: None,
            tiering: None,
        }
    }

    /// Reopens a durability directory after a shutdown or crash, with
    /// default runtime options; see [`Store::open_with`].
    ///
    /// # Errors
    ///
    /// See [`Store::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, EngineError> {
        Self::open_with(dir, StoreOptions::new())
    }

    /// Reopens a durability directory: loads and verifies the
    /// [`Manifest`], rebuilds the counter family from the recorded
    /// [`CounterSpec`], restores the newest intact base + delta chain
    /// (dropping a truncated or corrupt tail frame by frame, and falling
    /// back to earlier chains if a base itself is damaged), and resumes
    /// the service — counters, shard RNG streams, and the epoch clock
    /// bit-identical to a clean restore of the same chain. The
    /// [`RecoveryReport`] (via [`Store::recovery`]) tells producers the
    /// last applied sequence numbers so they can replay exactly once.
    ///
    /// # Errors
    ///
    /// [`EngineError::ManifestMissing`] / [`EngineError::ManifestCorrupt`]
    /// for an unusable manifest, [`EngineError::NoRestorableChain`] when
    /// frames are listed but nothing on disk restores, plus I/O errors.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Self, EngineError> {
        let dir = dir.as_ref();
        if !Manifest::path_in(dir).exists() {
            return Err(EngineError::ManifestMissing {
                path: Manifest::path_in(dir),
            });
        }
        // Take the single-writer lock *before* recovery reads anything,
        // so a still-live writer can't mutate the chain under us.
        let lock = DirLock::acquire(dir)?;
        let manifest = Manifest::load(dir)?;
        let (engine, report) = recover(dir, &manifest)?;
        // A tiered directory resumes tiered: rebuild the planner from the
        // manifest's ladder + budget and the resident map from the
        // restored engine's own tier tags (the durable source of truth).
        let tiering = manifest
            .tiering
            .as_ref()
            .map(|t| -> Result<TierSetup, EngineError> {
                let policy = TierPolicy::new(t.ladder.clone())?;
                let mut setup = TierSetup::new(policy, t.budget_bits, opts.detector_slots)?;
                setup.resident = engine
                    .iter()
                    .filter_map(|(key, _)| {
                        engine.tier_of(key).filter(|&t| t != 0).map(|t| (key, t))
                    })
                    .collect();
                Ok(setup)
            })
            .transpose()?;
        let durability = Some((dir.to_path_buf(), report.session));
        Ok(Self::launch(
            manifest.spec,
            manifest.config,
            opts,
            durability,
            engine,
            Some(report),
            Some(lock),
            tiering,
        ))
    }

    /// Spawns the applier thread (and checkpointer) around a built or
    /// restored engine — the one construction path behind `start` and
    /// `open`.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        spec: CounterSpec,
        config: EngineConfig,
        opts: StoreOptions,
        durability: Option<(PathBuf, u64)>,
        mut engine: CounterEngine<CounterFamily>,
        recovery: Option<RecoveryReport>,
        lock: Option<DirLock>,
        tiering: Option<TierSetup>,
    ) -> Self {
        let tier_budget_bits = tiering.as_ref().map(|t| t.controller.budget_bits());
        // Bound applier bursts at the tightest cadence so the
        // burst-boundary hook can actually fire that often — otherwise a
        // backlog (producers racing far ahead of the applier) would be
        // swallowed in one burst and cross every cadence point with a
        // single frame. The routed drain bounds bursts in *batches*, so
        // the event cadence converts at the batch capacity (a full batch
        // carries at least batch_pairs events).
        let burst_cap = opts.snapshot_every_events.min(if durability.is_some() {
            opts.checkpoint_every_events
        } else {
            u64::MAX
        });
        let batches_for_cap = usize::try_from(
            (burst_cap / u64::try_from(opts.ingest.batch_pairs).unwrap_or(u64::MAX)).max(1),
        )
        .unwrap_or(usize::MAX);
        let ingest = opts
            .ingest
            .with_burst_events(opts.ingest.burst_events.min(burst_cap))
            .with_burst_batches(opts.ingest.burst_batches.min(batches_for_cap));
        let queue = IngestQueue::new_routed(ingest, engine.router());
        let checkpointer: Option<BackgroundCheckpointer<CounterFamily>> =
            durability.as_ref().map(|(dir, session)| {
                // A tiered store's checkpointer serializes against the
                // ladder so tier-tagged snapshots land as version-3
                // frames (and the manifest header pins the ladder).
                let mut ck_config = CheckpointerConfig::new()
                    .with_every_events(opts.checkpoint_every_events)
                    .with_max_deltas_per_base(opts.max_deltas_per_base)
                    .with_directory(dir.clone())
                    .with_retain_bytes(false)
                    .with_retention(opts.retention)
                    .with_manifest(ManifestInfo {
                        spec,
                        config,
                        session: *session,
                        tiering: tiering.as_ref().map(TierSetup::manifest_tiering),
                    });
                if let Some(max) = opts.compact_max_chain_len {
                    ck_config = ck_config.with_max_chain_len(max);
                }
                if let Some(max) = opts.compact_max_chain_bytes {
                    ck_config = ck_config.with_max_chain_bytes(max);
                }
                BackgroundCheckpointer::spawn_with(
                    ck_config,
                    tiering.as_ref().map(|t| t.templates.clone()),
                )
            });
        let probe = checkpointer.as_ref().map(BackgroundCheckpointer::probe);
        let shared = Arc::new(Shared {
            snap: RwLock::new(Arc::new(engine.snapshot())),
            stats: Mutex::new(engine.stats().with_ingest(&queue.stats())),
            finalize: AtomicBool::new(true),
        });

        let thread_shared = Arc::clone(&shared);
        let thread_queue = queue.clone();
        let snapshot_every = opts.snapshot_every_events;
        let applier = std::thread::Builder::new()
            .name("ac-store-applier".into())
            .spawn(move || {
                let mut engine = engine;
                let thread_probe = checkpointer.as_ref().map(BackgroundCheckpointer::probe);
                let mut snap_due = CheckpointCadence::new(snapshot_every);
                let mut published_at = 0u64;
                let mut ckpt_due = checkpointer
                    .as_ref()
                    .map(|c| CheckpointCadence::new(c.config().every_events));
                // The tap and the burst hook both run on this thread,
                // never reentrantly; the RefCell lets them share the
                // tiering state across the two closures.
                let tiering = std::cell::RefCell::new(tiering);
                // The routed drain: producers already routed every pair
                // into per-(producer, shard) lanes, each persistent
                // shard worker drains its own lane set, and hooks run at
                // burst boundaries (the cadences catch up across a burst
                // without double-firing).
                thread_queue.drain_routed_tap(
                    &mut engine,
                    |pairs| {
                        if let Some(t) = tiering.borrow_mut().as_mut() {
                            t.observe(pairs);
                        }
                    },
                    |engine, applied| {
                        // Publish on cadence, or on quiesce: when the
                        // burst drained the rings dry, the stream tail
                        // below the cadence boundary would otherwise
                        // stay invisible to readers (and to replication
                        // cutters) until close.
                        let due = snap_due.is_due(applied);
                        if due || (applied > published_at && thread_queue.pending_events() == 0) {
                            // Migrate before publishing (and before any
                            // checkpoint below) so the replica and the
                            // frame both see this round's tier moves.
                            if let Some(t) = tiering.borrow_mut().as_mut() {
                                t.round(engine);
                            }
                            publish(&thread_shared, engine, &thread_queue, thread_probe.as_ref());
                            published_at = applied;
                        }
                        if let (Some(due), Some(ck)) = (ckpt_due.as_mut(), checkpointer.as_ref()) {
                            if due.is_due(applied) {
                                ck.submit_with_marks(
                                    engine.snapshot(),
                                    thread_queue.applied_marks(),
                                );
                            }
                        }
                    },
                );
                // Queue closed and drained: cut the final durable frame
                // (unless this is a simulated crash), publish the final
                // replica, and drain the writer thread.
                let report = checkpointer.map(|ck| {
                    if thread_shared.finalize.load(Ordering::SeqCst) {
                        ck.submit_with_marks(engine.snapshot(), thread_queue.applied_marks());
                    }
                    ck.finish()
                });
                // `finish` drained the writer thread, so the probe now
                // reflects the final durable frame — fold it into the
                // published stats instead of freezing a stale lag gauge.
                publish(
                    &thread_shared,
                    &mut engine,
                    &thread_queue,
                    thread_probe.as_ref(),
                );
                (engine, report)
            })
            .expect("spawn applier thread");

        Self {
            spec,
            config,
            queue,
            shared,
            applier: Some(applier),
            probe,
            directory: durability.map(|(dir, _)| dir),
            recovery,
            tier_budget_bits,
            _lock: lock,
        }
    }

    /// The runtime family the store was built (or reopened) with.
    #[must_use]
    pub fn spec(&self) -> CounterSpec {
        self.spec
    }

    /// The engine configuration (part of the durable identity).
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The durability directory, when configured.
    #[must_use]
    pub fn directory(&self) -> Option<&Path> {
        self.directory.as_deref()
    }

    /// What [`Store::open`] recovered; `None` for a store built fresh.
    #[must_use]
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Creates a writer handle with its own producer id and sequence
    /// numbering. Any number may exist, on any threads.
    #[must_use]
    pub fn writer(&self) -> StoreWriter {
        StoreWriter {
            producer: self.queue.producer(),
            queue: self.queue.clone(),
        }
    }

    /// Creates a writer handle whose sequence numbering resumes *after*
    /// `start_seq` instead of starting at 1 — the server-restart half of
    /// exactly-once ingest. A process that recreates its writers in
    /// producer-id order after [`Store::open`], seeding each from the
    /// recovered [`ProducerMark::applied_seq`], keeps the durable marks
    /// and the live ring numbering interchangeable: a remote client that
    /// replays from its acknowledged high-water mark lands exactly where
    /// recovery left off, with no gap and no overlap.
    #[must_use]
    pub fn writer_resuming(&self, start_seq: u64) -> StoreWriter {
        StoreWriter {
            producer: self.queue.producer_resuming(start_seq),
            queue: self.queue.clone(),
        }
    }

    /// Creates a reader pinned to the newest published replica (see
    /// [`StoreReader::refresh`] to re-pin later). Queries are lock-free
    /// against the pinned snapshot and never contend with writers.
    #[must_use]
    pub fn reader(&self) -> StoreReader {
        let snap = Arc::clone(&self.shared.snap.read().expect("snapshot slot"));
        StoreReader {
            shared: Arc::clone(&self.shared),
            seed: self.config.seed,
            snap,
        }
    }

    /// A point-in-time summary of the whole pipeline: engine stats as of
    /// the last publish, live ingest stats (queue depth, drops,
    /// per-producer sequence marks), live checkpointer stats.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            engine: self.shared.stats.lock().expect("stats slot").clone(),
            ingest: self.queue.stats(),
            checkpointer: self.probe.as_ref().map(CheckpointerProbe::stats),
            tier_budget_bits: self.tier_budget_bits,
        }
    }

    /// Stops the intake, drains every queued batch, cuts a final durable
    /// checkpoint frame (durable stores), publishes the final replica,
    /// and returns the service report. Readers created before or after
    /// `close` keep serving the final state.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves the right
    /// to surface final-flush failures without an API break.
    pub fn close(mut self) -> Result<StoreReport, EngineError> {
        let (engine, checkpoints) = self.shutdown(true);
        let mut stats = engine.stats().with_ingest(&self.queue.stats());
        // The final close-time frame is durable by now; fold it in so
        // the report's lag gauge reflects the disk, not the last
        // mid-run publish.
        if let Some(probe) = self.probe.as_ref() {
            stats = stats.with_checkpointer(&probe.stats());
        }
        Ok(StoreReport { stats, checkpoints })
    }

    /// Crash simulation (tests, chaos drills): stops without the final
    /// close-time checkpoint frame, leaving the directory exactly as the
    /// last cadence frame left it — the state [`Store::open`] must
    /// recover from. In-flight cadence frames already handed to the
    /// writer thread are still written (a real crash may also tear the
    /// newest frame file; tests simulate that by truncating it).
    pub fn kill(mut self) {
        let _ = self.shutdown(false);
    }

    /// Common shutdown: close the queue, join the applier, return the
    /// engine and checkpoint history.
    fn shutdown(
        &mut self,
        finalize: bool,
    ) -> (CounterEngine<CounterFamily>, Option<CheckpointerReport>) {
        self.shared.finalize.store(finalize, Ordering::SeqCst);
        self.queue.close();
        let handle = self.applier.take().expect("store not yet shut down");
        handle.join().expect("applier thread")
    }
}

impl Drop for Store {
    /// Best-effort clean close (final frame included) when the store is
    /// dropped without [`Store::close`].
    fn drop(&mut self) {
        if self.applier.is_some() {
            let _ = self.shutdown(true);
        }
    }
}

/// A write handle: coalesces increments locally and flushes batches into
/// the store's ingest queue under its own producer id. Cloning creates a
/// *new* producer (fresh id, fresh sequence) sharing the same store.
#[derive(Debug)]
pub struct StoreWriter {
    producer: IngestProducer,
    queue: IngestQueue,
}

impl StoreWriter {
    /// Records `delta` increments to `key` (coalesced; auto-flushes full
    /// batches, honoring the store's backpressure policy).
    pub fn record(&mut self, key: u64, delta: u64) {
        self.producer.record(key, delta);
    }

    /// Publishes the buffered batch (if any) into this writer's ring
    /// without ever blocking — the foreground of the nonblocking writer
    /// API. Pair with [`BackpressurePolicy::Fail`](crate::BackpressurePolicy::Fail) for a pipeline in
    /// which no event can be lost without the code that produced it
    /// finding out.
    ///
    /// # Errors
    ///
    /// [`SendError::Full`] when the ring has no free slot,
    /// [`SendError::Closed`] after shutdown — both *carry the rejected
    /// batch*, so the caller can hold it and
    /// [`resubmit`](StoreWriter::resubmit) later, spill it, or shed it
    /// deliberately. (Convert to the service error with `?` via
    /// `EngineError::from` when the batch itself is expendable.)
    pub fn try_send(&mut self) -> Result<(), SendError> {
        self.producer.try_send()
    }

    /// Publishes the buffered batch (if any), parking on the ring's
    /// doorbell while it is full — the lossless blocking path.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] (with the batch) if the store shuts down
    /// before a slot frees up.
    pub fn send(&mut self) -> Result<(), SendError> {
        self.producer.send()
    }

    /// Re-offers a batch returned inside a [`SendError`]; nonblocking.
    ///
    /// # Errors
    ///
    /// [`SendError::Full`] / [`SendError::Closed`], carrying the batch
    /// again.
    ///
    /// # Panics
    ///
    /// Panics if the batch came from a different writer (sequence
    /// provenance is per-producer).
    pub fn resubmit(&mut self, batch: crate::Batch) -> Result<(), SendError> {
        self.producer.resubmit(batch)
    }

    /// Publishes one *prepared* batch — exactly these pairs under exactly
    /// one sequence number — parking while the ring is full, and returns
    /// the sequence number assigned. This is the wire-ingest path: a
    /// server replaying a remote client's batch stream maps each wire
    /// batch to one ring batch, so the client's numbering and the durable
    /// [`ProducerMark`]s stay interchangeable.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] (with the batch) if the store shuts down
    /// before a slot frees up.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` carries no events (see
    /// [`IngestProducer::submit_batch`](crate::IngestProducer::submit_batch)).
    pub fn submit_batch(&mut self, pairs: Vec<(u64, u64)>) -> Result<u64, SendError> {
        self.producer.submit_batch(pairs)
    }

    /// Flushes the partial batch, if any, honoring the backpressure
    /// policy, then reports any silent losses after the fact.
    ///
    /// # Errors
    ///
    /// [`EngineError::BatchRefused`] when anything this writer submitted
    /// since the last `flush` was dropped (queue closed, or full under
    /// [`BackpressurePolicy::DropNewest`](crate::BackpressurePolicy::DropNewest)) — including batches
    /// [`StoreWriter::record`] auto-flushed silently; `dropped_events`
    /// totals every lost event. Under [`BackpressurePolicy::Fail`](crate::BackpressurePolicy::Fail)
    /// nothing is ever dropped silently, so this after-the-fact path
    /// cannot fire: refusals surface at [`StoreWriter::try_send`]
    /// instead, with the data still in hand.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        let _ = self.producer.flush_policy();
        let dropped_events = self.producer.take_refused_events();
        if dropped_events == 0 {
            Ok(())
        } else {
            Err(EngineError::BatchRefused { dropped_events })
        }
    }

    /// This writer's producer id (stamped on every batch it flushes).
    #[must_use]
    pub fn producer_id(&self) -> u64 {
        self.producer.id()
    }

    /// The sequence number of this writer's last accepted batch (0
    /// before the first) — compare against
    /// [`RecoveryReport::last_applied`] to replay exactly once.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.producer.last_seq()
    }

    /// The exactly-once resume cursor for this writer after a
    /// [`Store::open`]: the recovered mark for this writer's producer
    /// id, or an all-zero mark when the restored state never saw it.
    /// Producer ids are assigned in creation order per store, so a
    /// process that recreates its writers in the same order it did
    /// before the crash gets each writer's own cursor back — replay
    /// everything after [`ProducerMark::applied_seq`] and nothing else:
    ///
    /// ```no_run
    /// # use ac_engine::Store;
    /// # fn replay(from_seq: u64) {}
    /// let store = Store::open("/var/lib/ac-store").unwrap();
    /// let report = store.recovery().unwrap().clone();
    /// let writer = store.writer();
    /// replay(writer.resume_from(&report).applied_seq);
    /// ```
    #[must_use]
    pub fn resume_from(&self, report: &RecoveryReport) -> ProducerMark {
        let id = self.producer.id();
        report
            .last_applied
            .iter()
            .find(|m| m.producer == id)
            .copied()
            .unwrap_or(ProducerMark {
                producer: id,
                enqueued_seq: 0,
                applied_seq: 0,
            })
    }

    /// Pairs buffered in the batch under construction.
    #[must_use]
    pub fn pending_pairs(&self) -> usize {
        self.producer.pending_pairs()
    }
}

impl Clone for StoreWriter {
    /// A clone is a new, independent producer over the same store (its
    /// own id and sequence numbering; nothing buffered is shared).
    fn clone(&self) -> Self {
        Self {
            producer: self.queue.producer(),
            queue: self.queue.clone(),
        }
    }
}

/// A read handle pinned to one published replica: every query sees one
/// consistent freeze epoch, immune to concurrent writes, until
/// [`StoreReader::refresh`] re-pins. Cloning preserves the pin; handles
/// are cheap (`O(shards)` of `Arc`s) and lock-free on the query path.
#[derive(Debug, Clone)]
pub struct StoreReader {
    shared: Arc<Shared>,
    snap: Arc<EngineSnapshot<CounterFamily>>,
    seed: u64,
}

impl StoreReader {
    /// The estimate for `key` at the pinned freeze, or `None` if the key
    /// had never been touched.
    #[must_use]
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.snap.estimate(key)
    }

    /// Read-only access to `key`'s frozen counter.
    #[must_use]
    pub fn counter(&self, key: u64) -> Option<&CounterFamily> {
        self.snap.counter(key)
    }

    /// The cross-shard merged aggregate (Remark 2.4) of the pinned
    /// replica, folded with a deterministic RNG derived from the store
    /// seed and the pinned epoch — so two readers pinned to the same
    /// epoch with the same cache warmth agree. For explicit randomness
    /// use [`StoreReader::merged_total_with`].
    ///
    /// # Errors
    ///
    /// Propagates merge errors as [`EngineError::Core`] (unreachable for
    /// a store's homogeneous counters).
    pub fn merged_total(&self) -> Result<CounterFamily, EngineError> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix64(self.seed ^ mix64(self.epoch())));
        self.merged_total_with(&mut rng)
    }

    /// [`StoreReader::merged_total`] with caller-supplied randomness.
    ///
    /// # Errors
    ///
    /// Propagates merge errors as [`EngineError::Core`].
    pub fn merged_total_with(
        &self,
        rng: &mut dyn RandomSource,
    ) -> Result<CounterFamily, EngineError> {
        Ok(self.snap.merged_total(rng)?)
    }

    /// The merged aggregate's estimate — the service's one-number answer
    /// to "how many events, in total?".
    ///
    /// # Errors
    ///
    /// See [`StoreReader::merged_total`].
    pub fn merged_estimate(&self) -> Result<f64, EngineError> {
        Ok(self.merged_total()?.estimate())
    }

    /// The merged aggregate of a **tiered** store: counters merge within
    /// each tier under the family merge law and the per-tier totals'
    /// estimates sum (see [`EngineSnapshot::merged_estimate_tiered`]).
    /// `tiers` is the ladder length the store was started with. Uses the
    /// same deterministic epoch-derived randomness as
    /// [`StoreReader::merged_total`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Core`] when a key carries a tier tag at or beyond
    /// `tiers`.
    pub fn merged_estimate_tiered(&self, tiers: usize) -> Result<f64, EngineError> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(mix64(self.seed ^ mix64(self.epoch())));
        Ok(self.snap.merged_estimate_tiered(tiers, &mut rng)?)
    }

    /// Exact total events at the pinned freeze.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.snap.total_events()
    }

    /// Distinct keys at the pinned freeze.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snap.len()
    }

    /// True when the pinned replica holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snap.is_empty()
    }

    /// The freeze epoch this reader is pinned to.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// The pinned frozen replica itself (the expert API underneath).
    #[must_use]
    pub fn snapshot(&self) -> &EngineSnapshot<CounterFamily> {
        &self.snap
    }

    /// Re-pins to the newest published replica.
    pub fn refresh(&mut self) {
        self.snap = Arc::clone(&self.shared.snap.read().expect("snapshot slot"));
    }
}

/// Restores the newest intact chain a manifest describes; see
/// [`Store::open_with`].
fn recover(
    dir: &Path,
    manifest: &Manifest,
) -> Result<(CounterEngine<CounterFamily>, RecoveryReport), EngineError> {
    use crate::checkpoint::CheckpointKind;

    // For a tiered directory, restore against the manifest's ladder —
    // version-3 frames decode each key's state with its tier's template.
    // An untiered directory restores with the one-rung "ladder", which
    // is exactly the classic single-template restore.
    let templates: Vec<CounterFamily> = match &manifest.tiering {
        Some(t) => {
            if t.ladder.first() != Some(&manifest.spec) {
                return Err(EngineError::ManifestCorrupt {
                    what: "manifest ladder's default rung disagrees with its spec".into(),
                });
            }
            t.ladder
                .iter()
                .map(CounterSpec::build)
                .collect::<Result<_, _>>()?
        }
        None => vec![manifest.spec.build()?],
    };
    let frames = &manifest.frames;
    if frames.is_empty() {
        // A store that never reached its first checkpoint: resume empty.
        let engine = CounterEngine::new(templates[0].clone(), manifest.config);
        let report = RecoveryReport {
            directory: dir.to_path_buf(),
            frames_in_manifest: 0,
            frames_used: 0,
            frames_skipped: 0,
            events: 0,
            keys: 0,
            epoch: 0,
            last_applied: Vec::new(),
            session: manifest.next_session(),
        };
        return Ok((engine, report));
    }

    // Candidate chains, newest base first: each run [full, delta…] up to
    // the next full frame.
    let fulls: Vec<usize> = frames
        .iter()
        .enumerate()
        .filter(|(_, f)| f.kind == CheckpointKind::Full)
        .map(|(i, _)| i)
        .collect();
    let mut chains_tried = 0usize;
    for &base in fulls.iter().rev() {
        chains_tried += 1;
        let end = fulls
            .iter()
            .find(|&&i| i > base)
            .copied()
            .unwrap_or(frames.len());
        // Read segment files up to the first unreadable one.
        let mut segments: Vec<Vec<u8>> = Vec::new();
        for frame in &frames[base..end] {
            match std::fs::read(dir.join(&frame.file)) {
                Ok(bytes) => segments.push(bytes),
                Err(_) => break,
            }
        }
        // Fold the longest restorable prefix: a truncated or corrupt
        // tail delta drops off one frame at a time; a damaged base sends
        // us to the previous chain.
        while !segments.is_empty() {
            let refs: Vec<&[u8]> = segments.iter().map(Vec::as_slice).collect();
            // Worker count 0 = auto: recovery decodes shard sections in
            // parallel on big states, serially on small ones.
            match restore_checkpoint_chain_with_workers(&templates, &refs, 0) {
                Ok(engine) => {
                    let used = segments.len();
                    let tip = &frames[base + used - 1];
                    let report = RecoveryReport {
                        directory: dir.to_path_buf(),
                        frames_in_manifest: frames.len(),
                        frames_used: used,
                        frames_skipped: frames.len() - (base + used),
                        events: engine.total_events(),
                        keys: engine.len(),
                        epoch: tip.epoch,
                        last_applied: tip.marks.clone(),
                        session: manifest.next_session(),
                    };
                    return Ok((engine, report));
                }
                Err(_) => {
                    segments.pop();
                }
            }
        }
    }
    Err(EngineError::NoRestorableChain {
        frames: frames.len(),
        chains_tried,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CounterSpec {
        CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        }
    }

    #[test]
    fn store_runs_writes_and_serves_reads() {
        let store = Store::builder(spec())
            .with_shards(4)
            .with_seed(11)
            .with_snapshot_every_events(100)
            .start()
            .unwrap();
        let mut w = store.writer();
        for key in 0..50u64 {
            w.record(key, 200);
        }
        w.flush().unwrap();

        // A reader pinned before close may lag; after close the final
        // replica is published.
        let report = store.close().unwrap();
        assert_eq!(report.stats.events, 10_000);
        assert_eq!(report.stats.keys, 50);
        assert!(report.checkpoints.is_none(), "no durability configured");
    }

    #[test]
    fn readers_are_epoch_pinned_until_refreshed() {
        let store = Store::builder(CounterSpec::Exact)
            .with_snapshot_every_events(1) // publish at every batch
            .start()
            .unwrap();
        let early = store.reader();
        assert_eq!(early.total_events(), 0);

        let mut w = store.writer();
        w.record(1, 5);
        w.flush().unwrap();
        // Wait for the applier to publish the new replica.
        let mut fresh = store.reader();
        for _ in 0..10_000 {
            if fresh.total_events() == 5 {
                break;
            }
            std::thread::yield_now();
            fresh.refresh();
        }
        assert_eq!(fresh.total_events(), 5);
        assert_eq!(fresh.estimate(1), Some(5.0));
        assert_eq!(early.total_events(), 0, "pin held");
        let mut early = early;
        early.refresh();
        assert_eq!(early.total_events(), 5, "refresh re-pins");
        assert!(fresh.epoch() > 0);
        let _ = store.close().unwrap();
    }

    #[test]
    fn merged_estimate_tracks_totals() {
        let store = Store::builder(spec())
            .with_shards(8)
            .with_snapshot_every_events(1_000)
            .start()
            .unwrap();
        let mut w = store.writer();
        for key in 0..500u64 {
            w.record(key, 1_000);
        }
        w.flush().unwrap();
        let _ = store.stats(); // exercisable mid-run
        let mut reader = store.reader();
        let report = store.close().unwrap();
        assert_eq!(report.stats.events, 500_000);

        // After close the final replica is published: the merged
        // aggregate concentrates around the exact total, and repeated
        // calls on the same pin agree (deterministic seed + warm cache).
        reader.refresh();
        assert_eq!(reader.total_events(), 500_000);
        let merged = reader.merged_estimate().unwrap();
        let rel = (merged - 500_000.0).abs() / 500_000.0;
        assert!(rel < 0.4, "merged relative error {rel}");
        let again = reader.merged_estimate().unwrap();
        assert_eq!(merged, again, "same pin, same fold");
    }

    #[test]
    fn writer_clones_are_independent_producers() {
        let store = Store::builder(CounterSpec::Exact).start().unwrap();
        let mut a = store.writer();
        let b = a.clone();
        assert_ne!(a.producer_id(), b.producer_id());
        a.record(1, 1);
        assert_eq!(b.pending_pairs(), 0, "buffers are not shared");
        let _ = store.close().unwrap();
    }

    #[test]
    fn fail_policy_makes_silent_loss_unreachable() {
        let store = Store::builder(CounterSpec::Exact)
            .with_ingest(
                IngestConfig::new()
                    .with_ring_batches(1)
                    .with_batch_pairs(1)
                    .with_policy(BackpressurePolicy::Fail),
            )
            .start()
            .unwrap();
        let mut w = store.writer();
        // Slam records into a one-slot ring: the lagging applier forces
        // refusals, but under Fail a refusal can only retain the buffer
        // or surface at try_send — never discard.
        for key in 0..1_000u64 {
            w.record(key, 1);
        }
        // Drive the retained buffer in through the nonblocking path.
        // Full is the only acceptable refusal while the store runs, and
        // it hands the batch back — hold it and resubmit, as a real
        // lossless caller must. Nothing here can shed data invisibly.
        let mut held: Option<crate::Batch> = None;
        loop {
            let res = match held.take() {
                Some(batch) => w.resubmit(batch),
                None if w.pending_pairs() > 0 => w.try_send(),
                None => break,
            };
            if let Err(e) = res {
                assert!(e.is_full(), "unexpected refusal: {e}");
                held = Some(e.into_batch());
                std::thread::yield_now();
            }
        }
        // The after-the-fact reporter has nothing to report — the old
        // silent-loss path is unreachable under Fail.
        w.flush().unwrap();
        let report = store.close().unwrap();
        assert_eq!(report.stats.events, 1_000, "every event accounted for");
        assert_eq!(report.stats.dropped_events, 0);
        assert_eq!(report.stats.dropped_batches, 0);
    }

    #[test]
    fn invalid_spec_is_a_typed_error() {
        let err = Store::builder(CounterSpec::Morris { a: -3.0 })
            .start()
            .unwrap_err();
        assert!(matches!(err, EngineError::Core(_)));
    }

    /// A skewed ladder for tier tests: Morris default, exact top rung.
    fn ladder() -> TierPolicy {
        TierPolicy::new(vec![
            CounterSpec::Morris { a: 8.0 },
            spec(),
            CounterSpec::Exact,
        ])
        .unwrap()
    }

    fn tier_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ac-store-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tiering_requires_the_ladder_to_start_at_the_store_spec() {
        let err = Store::builder(CounterSpec::Exact)
            .with_tiering(ladder(), 1 << 20)
            .start()
            .unwrap_err();
        assert!(matches!(err, EngineError::Core(_)));
    }

    #[test]
    fn tiered_store_promotes_hot_keys_within_budget() {
        let store = Store::builder(CounterSpec::Morris { a: 8.0 })
            .with_shards(4)
            .with_seed(7)
            .with_snapshot_every_events(2_000)
            .with_tiering(ladder(), 1 << 20)
            .start()
            .unwrap();
        let mut w = store.writer();
        // Two blazing-hot keys over a cold tail, across enough cadence
        // boundaries for detection and promotion to both happen.
        for round in 0..40 {
            for hot in 0..2u64 {
                w.record(hot, 2_000);
            }
            for key in 0..100u64 {
                w.record(1_000 + key + 100 * round, 1);
            }
            w.flush().unwrap();
        }
        let report = store.close().unwrap();
        let counts = &report.stats.tier_keys;
        assert_eq!(counts.len(), 3, "one gauge per rung");
        let promoted: u64 = counts[1..].iter().sum();
        assert!(promoted >= 2, "hot keys promoted, got {counts:?}");
        assert!(
            report.stats.state_bits_total <= 1 << 20,
            "budget respected: {} bits",
            report.stats.state_bits_total
        );
        assert!(report.stats.bits_per_key() > 0.0);
    }

    #[test]
    fn tiered_store_survives_close_and_reopens_with_tiers_intact() {
        let dir = tier_dir("reopen");
        let budget = 1 << 20;
        let (tiers_before, estimates_before) = {
            let store = Store::builder(CounterSpec::Morris { a: 8.0 })
                .with_shards(4)
                .with_seed(7)
                .with_snapshot_every_events(1_000)
                .with_checkpoint_every_events(2_000)
                .with_tiering(ladder(), budget)
                .with_durability(&dir)
                .start()
                .unwrap();
            let mut w = store.writer();
            for _ in 0..30 {
                for hot in 0..2u64 {
                    w.record(hot, 1_500);
                }
                for key in 100..150u64 {
                    w.record(key, 1);
                }
                w.flush().unwrap();
            }
            let mut reader = store.reader();
            let _ = store.close().unwrap();
            reader.refresh();
            let snap = reader.snapshot();
            let mut tiers = Vec::new();
            let mut estimates = Vec::new();
            for shard in &snap.shards {
                for (key, counter, tier) in shard.entries_tagged() {
                    tiers.push((key, tier));
                    estimates.push((key, counter.estimate()));
                }
            }
            tiers.sort_unstable();
            estimates.sort_by_key(|&(key, _)| key);
            (tiers, estimates)
        };
        assert!(
            tiers_before.iter().any(|&(_, t)| t != 0),
            "test needs at least one promoted key to be meaningful"
        );

        let store = Store::open(&dir).unwrap();
        assert_eq!(
            store.stats().tier_budget_bits,
            Some(budget),
            "manifest restores the budget"
        );
        let reader = store.reader();
        let snap = reader.snapshot();
        let mut tiers_after = Vec::new();
        let mut estimates_after = Vec::new();
        for shard in &snap.shards {
            for (key, counter, tier) in shard.entries_tagged() {
                tiers_after.push((key, tier));
                estimates_after.push((key, counter.estimate()));
            }
        }
        tiers_after.sort_unstable();
        estimates_after.sort_by_key(|&(key, _)| key);
        assert_eq!(tiers_before, tiers_after, "tier assignments round-trip");
        assert_eq!(
            estimates_before, estimates_after,
            "estimates round-trip bit-exactly"
        );

        // The reopened store keeps migrating (same ladder, same planner).
        let mut w = store.writer();
        for _ in 0..10 {
            for hot in 0..2u64 {
                w.record(hot, 1_500);
            }
            w.flush().unwrap();
        }
        let report = store.close().unwrap();
        assert!(report.stats.state_bits_total <= budget);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_a_tiered_directory_untiered_is_refused() {
        let dir = tier_dir("mismatch");
        {
            let store = Store::builder(CounterSpec::Morris { a: 8.0 })
                .with_tiering(ladder(), 1 << 20)
                .with_durability(&dir)
                .start()
                .unwrap();
            let _ = store.close().unwrap();
        }
        // Same spec/config but no tiering: the ladder is part of the
        // durable identity, so the builder must refuse the directory.
        let err = Store::builder(CounterSpec::Morris { a: 8.0 })
            .with_durability(&dir)
            .start()
            .unwrap_err();
        assert!(matches!(err, EngineError::ManifestCorrupt { .. }));
        // Store::open, by contrast, resumes tiered from the manifest.
        let store = Store::open(&dir).unwrap();
        assert!(store.stats().tier_budget_bits.is_some());
        store.kill();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
