//! The pre-ring ingest queue — one global mutex-guarded `VecDeque` with a
//! pair of condvars — kept for one release as a deprecated shim.
//!
//! PR 6 replaced this design with per-producer lock-free SPSC rings and a
//! doorbell ([`IngestQueue`](crate::IngestQueue)); this module preserves
//! the old implementation verbatim (renamed `Legacy*`) so that
//!
//! * migrating callers keep compiling for one release, and
//! * the pipeline bench and the bit-identity tests can run the *same*
//!   stream through both implementations and compare throughput and
//!   checkpoint bytes old-vs-new.
//!
//! Semantics are exactly the PR 3–5 queue: one bounded global queue, a
//! `Mutex` + `Condvar` pair serializing every producer flush and every
//! applier pop, and [`BackpressurePolicy::Block`] /
//! [`BackpressurePolicy::DropNewest`] mapped onto the old block-or-drop
//! boolean ([`BackpressurePolicy::Fail`] behaves as `DropNewest` here —
//! the legacy design has no nonblocking refusal surface, which is half
//! the reason it is deprecated).

#![allow(deprecated)]

use crate::ingest::{BackpressurePolicy, Batch, IngestConfig, IngestStats, ProducerMark};
use crate::registry::CounterEngine;
use ac_core::ApproxCounter;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Live counters shared by producers, appliers, and stats readers.
#[derive(Debug, Default)]
struct Totals {
    enqueued_batches: AtomicU64,
    enqueued_events: AtomicU64,
    applied_events: AtomicU64,
    dropped_batches: AtomicU64,
    dropped_events: AtomicU64,
    next_producer: AtomicU64,
}

/// The mutex-guarded queue proper.
#[derive(Debug)]
struct Channel {
    queue: VecDeque<Batch>,
    closed: bool,
}

#[derive(Debug)]
struct Inner {
    config: IngestConfig,
    channel: Mutex<Channel>,
    /// Signaled when a batch is popped or the queue closes.
    space: Condvar,
    /// Signaled when a batch is pushed or the queue closes.
    ready: Condvar,
    totals: Totals,
    /// producer id → (enqueued_seq, applied_seq). Lock order: `channel`
    /// before `marks` (flush holds both); `marks` alone is fine.
    marks: Mutex<BTreeMap<u64, (u64, u64)>>,
}

impl Inner {
    fn blocks(&self) -> bool {
        matches!(self.config.policy, BackpressurePolicy::Block)
    }
}

/// The PR 3–5 global-lock ingest queue, preserved for migration and
/// old-vs-new benchmarking. Cheap to clone (all clones share the queue).
#[derive(Debug, Clone)]
#[deprecated(
    since = "0.6.0",
    note = "superseded by the lock-free per-producer `IngestQueue`; \
            kept one release for migration and A/B benchmarking"
)]
pub struct LegacyIngestQueue {
    inner: Arc<Inner>,
}

impl LegacyIngestQueue {
    /// Creates the queue. [`IngestConfig::ring_batches`] is read as the
    /// *global* queue capacity (the legacy design has one queue, not one
    /// ring per producer).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn new(config: IngestConfig) -> Self {
        assert!(config.ring_batches > 0, "queue capacity must be positive");
        assert!(config.batch_pairs > 0, "batch size must be positive");
        Self {
            inner: Arc::new(Inner {
                config,
                channel: Mutex::new(Channel {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                space: Condvar::new(),
                ready: Condvar::new(),
                totals: Totals::default(),
                marks: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> IngestConfig {
        self.inner.config
    }

    /// Creates a producer handle with a fresh producer id.
    #[must_use]
    pub fn producer(&self) -> LegacyIngestProducer {
        let id = self
            .inner
            .totals
            .next_producer
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .marks
            .lock()
            .expect("ingest marks lock")
            .insert(id, (0, 0));
        LegacyIngestProducer {
            inner: Arc::clone(&self.inner),
            id,
            next_seq: 1,
            pairs: Vec::new(),
            slots: HashMap::new(),
            events: 0,
            refused_events: 0,
        }
    }

    /// Closes the queue: further flushes are refused (counted as
    /// dropped), appliers drain what remains then observe end-of-stream.
    pub fn close(&self) {
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        ch.closed = true;
        drop(ch);
        self.inner.ready.notify_all();
        self.inner.space.notify_all();
    }

    /// Pops the next batch, blocking while the queue is empty and open.
    #[must_use]
    pub fn next_batch(&self) -> Option<Batch> {
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        loop {
            if let Some(batch) = ch.queue.pop_front() {
                drop(ch);
                self.inner.space.notify_one();
                return Some(batch);
            }
            if ch.closed {
                return None;
            }
            ch = self.inner.ready.wait(ch).expect("ingest lock");
        }
    }

    /// Pops the next batch if one is queued; never blocks.
    #[must_use]
    pub fn try_next_batch(&self) -> Option<Batch> {
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        let batch = ch.queue.pop_front();
        drop(ch);
        if batch.is_some() {
            self.inner.space.notify_one();
        }
        batch
    }

    /// Drains every remaining batch into `engine` sequentially, blocking
    /// until the queue closes. Returns the events applied by this call.
    pub fn drain_into<C: ApproxCounter + Clone>(&self, engine: &mut CounterEngine<C>) -> u64 {
        let mut applied = 0u64;
        while let Some(batch) = self.next_batch() {
            applied += batch.events();
            engine.apply(&batch.pairs);
            self.note_applied(&batch);
        }
        applied
    }

    /// Like [`LegacyIngestQueue::drain_into`], but each batch fans out
    /// with one scoped thread per touched shard.
    pub fn drain_parallel<C: ApproxCounter + Clone + Send + Sync>(
        &self,
        engine: &mut CounterEngine<C>,
    ) -> u64 {
        self.drain_parallel_with(engine, |_, _| {})
    }

    /// [`LegacyIngestQueue::drain_parallel`] with a per-batch applier
    /// hook (the legacy integration point for snapshots/checkpoints).
    pub fn drain_parallel_with<C, F>(&self, engine: &mut CounterEngine<C>, mut hook: F) -> u64
    where
        C: ApproxCounter + Clone + Send + Sync,
        F: FnMut(&mut CounterEngine<C>, u64),
    {
        let mut applied = 0u64;
        while let Some(batch) = self.next_batch() {
            applied += batch.events();
            engine.apply_parallel(&batch.pairs);
            self.note_applied(&batch);
            hook(engine, applied);
        }
        applied
    }

    fn note_applied(&self, batch: &Batch) {
        self.inner
            .totals
            .applied_events
            .fetch_add(batch.events(), Ordering::Relaxed);
        let mut marks = self.inner.marks.lock().expect("ingest marks lock");
        let entry = marks.entry(batch.producer).or_insert((0, 0));
        entry.1 = entry.1.max(batch.seq);
    }

    /// The per-producer sequence high-water marks, in producer-id order.
    #[must_use]
    pub fn applied_marks(&self) -> Vec<ProducerMark> {
        self.inner
            .marks
            .lock()
            .expect("ingest marks lock")
            .iter()
            .map(|(&producer, &(enqueued_seq, applied_seq))| ProducerMark {
                producer,
                enqueued_seq,
                applied_seq,
            })
            .collect()
    }

    /// Diagnostics snapshot (same shape as the ring queue's, with
    /// `folded_pairs` always zero — the legacy applier never folds).
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        let depth = self.inner.channel.lock().expect("ingest lock").queue.len();
        let t = &self.inner.totals;
        IngestStats {
            queue_depth: depth,
            enqueued_batches: t.enqueued_batches.load(Ordering::Relaxed),
            enqueued_events: t.enqueued_events.load(Ordering::Relaxed),
            applied_events: t.applied_events.load(Ordering::Relaxed),
            dropped_batches: t.dropped_batches.load(Ordering::Relaxed),
            dropped_events: t.dropped_events.load(Ordering::Relaxed),
            folded_pairs: 0,
            producers: self.applied_marks(),
        }
    }
}

/// The legacy producer handle: coalesces locally, flushes into the shared
/// bounded queue under the global lock. Dropping flushes the partial
/// batch.
#[derive(Debug)]
#[deprecated(
    since = "0.6.0",
    note = "superseded by the ring-backed `IngestProducer` and its \
            `try_send`/`send` surface"
)]
pub struct LegacyIngestProducer {
    inner: Arc<Inner>,
    id: u64,
    next_seq: u64,
    pairs: Vec<(u64, u64)>,
    slots: HashMap<u64, usize>,
    events: u64,
    refused_events: u64,
}

impl LegacyIngestProducer {
    /// This producer's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The sequence number of the last accepted batch (0 before the
    /// first).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records `delta` increments to `key`, coalescing repeats; a full
    /// batch flushes automatically.
    pub fn record(&mut self, key: u64, delta: u64) {
        if delta == 0 {
            return;
        }
        match self.slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let pair = &mut self.pairs[*e.get()];
                pair.1 = pair.1.saturating_add(delta);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.pairs.len());
                self.pairs.push((key, delta));
            }
        }
        self.events = self.events.saturating_add(delta);
        if self.pairs.len() >= self.inner.config.batch_pairs {
            self.flush();
        }
    }

    /// Events this producer has had refused since the last call;
    /// resets on read.
    pub fn take_refused_events(&mut self) -> u64 {
        std::mem::take(&mut self.refused_events)
    }

    /// Pushes the current batch into the queue, honoring the (mapped)
    /// backpressure policy. `true` when accepted; dropped batches never
    /// consume a sequence number.
    pub fn flush(&mut self) -> bool {
        if self.pairs.is_empty() {
            return true;
        }
        let pairs = std::mem::take(&mut self.pairs);
        let events = std::mem::take(&mut self.events);
        self.slots.clear();

        let t = &self.inner.totals;
        let mut ch = self.inner.channel.lock().expect("ingest lock");
        loop {
            if ch.closed {
                drop(ch);
                t.dropped_batches.fetch_add(1, Ordering::Relaxed);
                t.dropped_events.fetch_add(events, Ordering::Relaxed);
                self.refused_events = self.refused_events.saturating_add(events);
                return false;
            }
            if ch.queue.len() < self.inner.config.ring_batches {
                let seq = self.next_seq;
                self.next_seq += 1;
                {
                    let mut marks = self.inner.marks.lock().expect("ingest marks lock");
                    marks.entry(self.id).or_insert((0, 0)).0 = seq;
                }
                ch.queue.push_back(Batch {
                    producer: self.id,
                    seq,
                    pairs,
                });
                drop(ch);
                t.enqueued_batches.fetch_add(1, Ordering::Relaxed);
                t.enqueued_events.fetch_add(events, Ordering::Relaxed);
                self.inner.ready.notify_one();
                return true;
            }
            if !self.inner.blocks() {
                drop(ch);
                t.dropped_batches.fetch_add(1, Ordering::Relaxed);
                t.dropped_events.fetch_add(events, Ordering::Relaxed);
                self.refused_events = self.refused_events.saturating_add(events);
                return false;
            }
            ch = self.inner.space.wait(ch).expect("ingest lock");
        }
    }
}

impl Drop for LegacyIngestProducer {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::EngineConfig;
    use ac_core::ExactCounter;
    use std::thread;

    fn small(capacity: usize, batch_pairs: usize, policy: BackpressurePolicy) -> IngestConfig {
        IngestConfig::new()
            .with_ring_batches(capacity)
            .with_batch_pairs(batch_pairs)
            .with_policy(policy)
    }

    #[test]
    fn legacy_queue_still_conserves_multi_producer_totals() {
        let q = LegacyIngestQueue::new(small(2, 8, BackpressurePolicy::Block));
        let mut engine = CounterEngine::new(ExactCounter::new(), EngineConfig::default());
        let per_producer = 2_000u64;
        let producers = 4u64;

        let applied = thread::scope(|s| {
            let handles: Vec<_> = (0..producers)
                .map(|t| {
                    let q = q.clone();
                    s.spawn(move || {
                        let mut p = q.producer();
                        for i in 0..per_producer {
                            p.record((t * per_producer + i) % 257, 1);
                        }
                    })
                })
                .collect();
            let drain = s.spawn(|| q.drain_into(&mut engine));
            for h in handles {
                h.join().expect("producer thread");
            }
            q.close();
            drain.join().expect("applier thread")
        });
        assert_eq!(applied, per_producer * producers);
        assert_eq!(engine.total_events(), per_producer * producers);
        let s = q.stats();
        assert_eq!(s.dropped_batches, 0);
        for m in &s.producers {
            assert_eq!(m.applied_seq, m.enqueued_seq, "producer {}", m.producer);
        }
    }

    #[test]
    fn legacy_drop_policy_counts_refusals() {
        let q = LegacyIngestQueue::new(small(1, 1, BackpressurePolicy::DropNewest));
        let mut p = q.producer();
        p.record(1, 5); // fills the queue
        p.record(2, 7); // refused
        let s = q.stats();
        assert_eq!(s.enqueued_batches, 1);
        assert_eq!(s.dropped_batches, 1);
        assert_eq!(s.dropped_events, 7);
        assert_eq!(p.last_seq(), 1);
    }
}
