//! The write layer: key→shard routing, slab ownership, and batch
//! application (sequential and one-thread-per-shard).
//!
//! This layer does exactly two things: own the per-shard counter slabs
//! and apply `(key, delta)` batches to them. Everything else lives in its
//! own layer — admission and coalescing in [`crate::ingest`], reads in
//! [`crate::snapshot`], durability in [`crate::checkpoint`].
//!
//! ## Copy-on-write epochs
//!
//! Each shard lives behind an [`Arc`]. A freeze
//! ([`CounterEngine::snapshot`]) clones the `Arc`s —
//! `O(shards)` pointer bumps — and bumps the engine's *epoch*. The write
//! path reaches shards only through [`Arc::make_mut`]: while a snapshot
//! still shares a shard, the first mutation after the freeze clones that
//! one shard's slab (copy-on-write); once the snapshot drops — or for
//! shards the snapshot era never touches — `make_mut` is a pointer check
//! and no copy ever happens. A freeze therefore costs `O(dirty shards)`
//! of copying, amortized into the writes that follow it, instead of the
//! old stop-the-world `O(keys)` clone. Every write also stamps its
//! shard's [`dirty epoch`](crate::shard::Shard::touch), which is what the
//! incremental checkpoint layer reads to serialize only shards dirtied
//! since a parent checkpoint.

use crate::checkpointer::CheckpointerStats;
use crate::ingest::{IngestStats, ProducerMark};
use crate::shard::{route, Shard};
use ac_core::{ApproxCounter, CoreError, Mergeable};
use ac_randkit::{RandomSource, SplitMix64};
use std::sync::{Arc, Mutex};

/// Engine construction parameters. Construct with the `const` builder
/// surface: `EngineConfig::new().with_shards(32).with_seed(7)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Number of shards. More shards mean more parallelism on
    /// [`CounterEngine::apply_parallel`] and smaller per-shard slabs; the
    /// key→shard partition (and therefore every counter's state) changes
    /// with this value, so treat it as part of the engine's identity.
    pub shards: usize,
    /// Seed for the per-shard RNGs and the key-routing hash.
    pub seed: u64,
}

impl EngineConfig {
    /// The default configuration (16 shards, fixed seed), as a `const`
    /// starting point for the `with_*` builders.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            shards: 16,
            seed: 0x00A5_5C01_17E5,
        }
    }

    /// Sets the shard count (part of the engine's identity).
    #[must_use]
    pub const fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the RNG/routing seed (part of the engine's identity).
    #[must_use]
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The key→shard partition of an engine, as a standalone copyable value:
/// the routing salt (derived from the config seed exactly as the engine
/// derives it) plus the shard count, applied through the same SplitMix64
/// finalizer + Lemire range reduction as [`CounterEngine::shard_of`].
///
/// This is what lets *producers* route pairs at send time — the
/// routed-ingest mode ([`IngestQueue::new_routed`](crate::IngestQueue::new_routed))
/// hashes each key once, where the data is cache-hot, instead of paying a
/// second pass on the drain thread. Two routers are interchangeable iff
/// they compare equal; [`CounterEngine::router`] is the canonical way to
/// obtain the router matching an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    salt: u64,
    shards: usize,
}

impl ShardRouter {
    /// Derives the router every engine built from `config` uses.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.shards > 0, "router needs at least one shard");
        let (salt, _) = salt_for(config.seed);
        Self {
            salt,
            shards: config.shards,
        }
    }

    /// The shard count this router partitions keys over.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard `key` routes to — identical to
    /// [`CounterEngine::shard_of`] on any engine with the same config.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        route(self.salt, self.shards, key)
    }

    pub(crate) fn from_parts(salt: u64, shards: usize) -> Self {
        Self { salt, shards }
    }
}

/// The routing salt and per-shard seeder derived from `seed` — engine
/// construction, checkpoint restore, and [`ShardRouter::new`] must all
/// derive them identically.
fn salt_for(seed: u64) -> (u64, SplitMix64) {
    let mut seeder = SplitMix64::new(seed);
    let salt = seeder.next_u64();
    (salt, seeder)
}

/// A point-in-time summary of the engine (and, when taken through
/// [`EngineStats::with_ingest`] / [`EngineStats::with_checkpointer`], of
/// the layers around it), for reports and capacity planning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Number of shards.
    pub shards: usize,
    /// Distinct keys currently tracked.
    pub keys: usize,
    /// Total increments applied (exact).
    pub events: u64,
    /// Sum of live counter register bits across all shards — the quantity
    /// a tiering budget caps. Maintained incrementally per shard
    /// (`O(shards)` to read, never an `O(keys)` scan) and equal to what
    /// the checkpoint layer reports as
    /// [`CheckpointStats::counter_state_bits`](crate::CheckpointStats::counter_state_bits) —
    /// a test pins the two together.
    pub state_bits_total: u64,
    /// Distinct keys per accuracy tier (`tier_keys[t]` = keys tagged tier
    /// `t`; a never-tiered engine reports all keys in tier 0).
    pub tier_keys: Vec<u64>,
    /// Largest keys-per-shard count (load-balance diagnostic).
    pub max_shard_keys: usize,
    /// Shards written since the last freeze — the copy-on-write debt the
    /// *next* freeze will schedule, and exactly what a delta checkpoint
    /// against the last freeze would serialize.
    pub dirty_shards: usize,
    /// Wall-clock nanoseconds the most recent freeze
    /// ([`CounterEngine::snapshot`] or
    /// [`CounterEngine::snapshot_deep`]) took (0 before
    /// the first freeze).
    pub last_freeze_ns: u64,
    /// Events applied since the last checkpoint was cut (0 when no
    /// checkpointer is attached; see [`EngineStats::with_checkpointer`]).
    pub checkpoint_lag_events: u64,
    /// Batches sitting in the ingest queue, not yet applied (0 when no
    /// ingest layer is attached; see [`EngineStats::with_ingest`]).
    pub queue_depth: usize,
    /// Batches the ingest layer dropped because a producer's ring was
    /// full under [`BackpressurePolicy::DropNewest`](crate::BackpressurePolicy::DropNewest)
    /// (0 without an ingest layer).
    pub dropped_batches: u64,
    /// Events lost with those dropped batches (0 without an ingest
    /// layer).
    pub dropped_events: u64,
    /// Per-producer sequence high-water marks from the ingest layer, in
    /// producer-id order (empty without an ingest layer; see
    /// [`EngineStats::with_ingest`]).
    pub producers: Vec<ProducerMark>,
}

impl EngineStats {
    /// Average live counter register bits per tracked key — the budget
    /// gauge normalized for capacity planning (`0.0` with no keys).
    #[must_use]
    pub fn bits_per_key(&self) -> f64 {
        if self.keys == 0 {
            0.0
        } else {
            self.state_bits_total as f64 / self.keys as f64
        }
    }

    /// Folds ingest-layer diagnostics into an engine summary, so one
    /// struct describes the whole write pipeline — queue depth, drops,
    /// and the per-producer sequence high-water marks.
    #[must_use]
    pub fn with_ingest(mut self, ingest: &IngestStats) -> Self {
        self.queue_depth = ingest.queue_depth;
        self.dropped_batches = ingest.dropped_batches;
        self.dropped_events = ingest.dropped_events;
        self.producers = ingest.producers.clone();
        self
    }

    /// Folds background-checkpointer diagnostics in: how many applied
    /// events the newest durable checkpoint is behind the live engine.
    #[must_use]
    pub fn with_checkpointer(mut self, ckpt: &CheckpointerStats) -> Self {
        self.checkpoint_lag_events = self.events.saturating_sub(ckpt.last_checkpoint_events);
        self
    }
}

/// One cached per-shard fold: the shard's counters merged into a single
/// counter, valid while the identifying triple still matches the shard.
/// `(dirty_epoch, events, len)` is a sound validity key within one engine
/// lineage: any state-changing write bumps `events` (a zero-delta update
/// changes neither events nor state), and a freeze opens a new epoch
/// before post-freeze writes can stamp it.
#[derive(Debug, Clone)]
pub(crate) struct FoldEntry<C> {
    pub(crate) dirty_epoch: u64,
    pub(crate) events: u64,
    pub(crate) len: usize,
    pub(crate) folded: C,
}

/// The merged-aggregate cache shared by an engine and every snapshot
/// frozen from it (one slot per shard). See
/// [`EngineSnapshot::merged_total`](crate::EngineSnapshot::merged_total).
pub(crate) type FoldCache<C> = Arc<Mutex<Vec<Option<FoldEntry<C>>>>>;

pub(crate) fn fresh_fold_cache<C>(shards: usize) -> FoldCache<C> {
    Arc::new(Mutex::new((0..shards).map(|_| None).collect()))
}

/// One cached per-shard **tiered** fold: the shard's counters merged
/// within each tier (`folded[t]` = the shard's tier-`t` aggregate, `None`
/// when the shard holds no tier-`t` keys). Valid while the same
/// `(dirty_epoch, events, len)` triple as [`FoldEntry`] matches *and* the
/// caller asks for the same ladder length. Tier **migrations** mutate
/// counter state without moving either `events` or `len`, so
/// [`CounterEngine::apply_migrations`] explicitly evicts the slots of
/// migrated shards (from this cache and from [`FoldCache`]) instead of
/// relying on the triple.
#[derive(Debug, Clone)]
pub(crate) struct TieredFoldEntry {
    pub(crate) dirty_epoch: u64,
    pub(crate) events: u64,
    pub(crate) len: usize,
    pub(crate) folded: Vec<Option<ac_core::CounterFamily>>,
}

/// The tiered merged-aggregate cache shared by an engine and every
/// snapshot frozen from it (one slot per shard). Concrete over
/// [`ac_core::CounterFamily`] because only tiered (ladder-bearing)
/// engines ever populate it; on other engines it stays empty.
pub(crate) type TieredFoldCache = Arc<Mutex<Vec<Option<TieredFoldEntry>>>>;

pub(crate) fn fresh_tiered_fold_cache(shards: usize) -> TieredFoldCache {
    Arc::new(Mutex::new((0..shards).map(|_| None).collect()))
}

/// A hash-sharded registry of per-key approximate counters — the write
/// layer of the engine pipeline.
///
/// Every key's counter is cloned on first touch from a template (reset at
/// construction), lives entirely within one shard, and advances through
/// the family's batched
/// [`increment_by`](ApproxCounter::increment_by) fast path. See the crate
/// docs for the determinism and aggregation contracts, and for the
/// surrounding layers: [`crate::IngestQueue`] feeds this type,
/// [`CounterEngine::snapshot`] freezes it for readers,
/// and [`crate::checkpoint_snapshot`] persists it.
#[derive(Debug)]
pub struct CounterEngine<C> {
    /// Copy-on-write shard slabs; see the module docs.
    shards: Vec<Arc<Shard<C>>>,
    template: C,
    config: EngineConfig,
    /// Salt for the key→shard hash, derived from the config seed.
    salt: u64,
    /// The current freeze epoch: bumped by every freeze, stamped onto
    /// shards by every write. Starts at 1 so a fresh shard's
    /// `dirty_epoch` of 0 reads as "never written".
    epoch: u64,
    /// Duration of the most recent freeze, in nanoseconds.
    last_freeze_ns: u64,
    /// Per-shard merged-aggregate cache, shared with snapshots.
    fold_cache: FoldCache<C>,
    /// Per-shard tiered-aggregate cache, shared with snapshots (empty on
    /// engines that never serve `merged_estimate_tiered`).
    tiered_fold_cache: TieredFoldCache,
}

impl<C: Clone> Clone for CounterEngine<C> {
    /// Clones the engine with a **fresh, empty** fold cache: a clone may
    /// diverge from the original within the same epoch, and the cache's
    /// validity key is only sound within one lineage.
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.clone(),
            template: self.template.clone(),
            config: self.config,
            salt: self.salt,
            epoch: self.epoch,
            last_freeze_ns: self.last_freeze_ns,
            fold_cache: fresh_fold_cache(self.shards.len()),
            tiered_fold_cache: fresh_tiered_fold_cache(self.shards.len()),
        }
    }
}

impl<C: ApproxCounter + Clone> CounterEngine<C> {
    /// Creates an engine whose counters are clones of `template` (reset
    /// before use, so a previously-used counter is a valid template).
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn new(template: C, config: EngineConfig) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        let mut template = template;
        template.reset();
        let (salt, mut seeder) = salt_for(config.seed);
        let shards = (0..config.shards)
            .map(|_| Arc::new(Shard::new(seeder.next_u64())))
            .collect();
        Self {
            shards,
            template,
            config,
            salt,
            epoch: 1,
            last_freeze_ns: 0,
            fold_cache: fresh_fold_cache(config.shards),
            tiered_fold_cache: fresh_tiered_fold_cache(config.shards),
        }
    }

    /// Rebuilds an engine from restored shards (the checkpoint layer's
    /// constructor). The template is reset; shard count must match the
    /// config; `epoch` resumes the freeze-epoch clock from the restored
    /// checkpoint so subsequent deltas stay correctly ordered.
    pub(crate) fn from_restored(
        template: C,
        config: EngineConfig,
        shards: Vec<Shard<C>>,
        epoch: u64,
    ) -> Self {
        assert_eq!(config.shards, shards.len(), "shard count mismatch");
        assert!(config.shards > 0, "engine needs at least one shard");
        let mut template = template;
        template.reset();
        let (salt, _) = salt_for(config.seed);
        Self {
            shards: shards.into_iter().map(Arc::new).collect(),
            template,
            config,
            salt,
            epoch,
            last_freeze_ns: 0,
            fold_cache: fresh_fold_cache(config.shards),
            tiered_fold_cache: fresh_tiered_fold_cache(config.shards),
        }
    }

    /// The configuration the engine was built with (part of its identity:
    /// the checkpoint header embeds it).
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The shard a key routes to — stable for the engine's lifetime (the
    /// partition is part of its identity). Public so workload tools can
    /// construct shard-targeted traffic (e.g. the pipeline bench dirties
    /// exactly one shard to size a delta checkpoint).
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        route(self.salt, self.shards.len(), key)
    }

    /// The engine's key→shard partition as a standalone copyable value,
    /// for producer-side routing ([`crate::IngestQueue::new_routed`]).
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        ShardRouter::from_parts(self.salt, self.shards.len())
    }

    /// The routing salt (shared with snapshots).
    pub(crate) fn salt(&self) -> u64 {
        self.salt
    }

    /// The shard slabs (read-only view for the snapshot/checkpoint layers).
    pub(crate) fn shards(&self) -> &[Arc<Shard<C>>] {
        &self.shards
    }

    /// Moves a shard out of the engine for the pooled applier, leaving a
    /// placeholder. The engine is *not* a consistent view until the
    /// matching [`CounterEngine::put_shard`] — the applier only exposes
    /// it (to burst hooks) after every shard is back.
    pub(crate) fn take_shard(&mut self, index: usize) -> Arc<Shard<C>> {
        std::mem::replace(&mut self.shards[index], Arc::new(Shard::new(0)))
    }

    /// Reinstalls a shard moved out by [`CounterEngine::take_shard`].
    pub(crate) fn put_shard(&mut self, index: usize, shard: Arc<Shard<C>>) {
        self.shards[index] = shard;
    }

    /// The reset template counter.
    pub(crate) fn template(&self) -> &C {
        &self.template
    }

    /// The shared merged-aggregate cache (cloned into snapshots).
    pub(crate) fn fold_cache(&self) -> &FoldCache<C> {
        &self.fold_cache
    }

    /// The shared tiered-aggregate cache (cloned into snapshots).
    pub(crate) fn tiered_fold_cache(&self) -> &TieredFoldCache {
        &self.tiered_fold_cache
    }

    /// The current freeze epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Freeze bookkeeping for the snapshot layer: returns the epoch the
    /// frozen replica belongs to, advances the clock so subsequent writes
    /// stamp a strictly newer epoch, and records how long the freeze
    /// took.
    pub(crate) fn note_freeze(&mut self, freeze_ns: u64) -> u64 {
        let frozen = self.epoch;
        self.epoch += 1;
        self.last_freeze_ns = freeze_ns;
        frozen
    }

    /// Applies a batch of `(key, delta)` updates sequentially.
    ///
    /// Work is proportional to the batch length plus the counter state
    /// transitions triggered — never to the sum of deltas — because each
    /// update rides the counter's batched fast path.
    pub fn apply(&mut self, batch: &[(u64, u64)]) {
        for &(key, delta) in batch {
            let idx = route(self.salt, self.shards.len(), key);
            let shard = Arc::make_mut(&mut self.shards[idx]);
            shard.touch(self.epoch);
            shard.apply_one(&self.template, key, delta);
        }
    }

    /// Applies a batch with one thread per (touched) shard.
    ///
    /// The final state is bit-identical to [`CounterEngine::apply`] on the
    /// same batch: the key→shard partition is deterministic, updates for
    /// one shard stay in batch order, and each shard consumes only its own
    /// RNG stream, so thread scheduling cannot leak into counter states.
    /// Copy-on-write splits happen on this thread, before the spawn, so
    /// the per-shard workers always own unique slabs.
    pub fn apply_parallel(&mut self, batch: &[(u64, u64)])
    where
        C: Send + Sync,
    {
        let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.shards.len()];
        for &(key, delta) in batch {
            buckets[self.shard_of(key)].push((key, delta));
        }
        let template = &self.template;
        let epoch = self.epoch;
        std::thread::scope(|scope| {
            for (arc, bucket) in self.shards.iter_mut().zip(&buckets) {
                if bucket.is_empty() {
                    continue;
                }
                let shard = Arc::make_mut(arc);
                shard.touch(epoch);
                scope.spawn(move || {
                    for &(key, delta) in bucket {
                        shard.apply_one(template, key, delta);
                    }
                });
            }
        });
    }

    /// The current estimate for `key`, or `None` if the key was never
    /// touched.
    #[must_use]
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.shards[self.shard_of(key)]
            .get(key)
            .map(ApproxCounter::estimate)
    }

    /// Read-only access to `key`'s counter.
    #[must_use]
    pub fn counter(&self, key: u64) -> Option<&C> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Number of distinct keys tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no key has been touched yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total increments applied across all shards (exact bookkeeping,
    /// `O(shards)` to read).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events()).sum()
    }

    /// Iterates all `(key, counter)` pairs. Counter states are
    /// deterministic; iteration order is unspecified.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &C)> {
        self.shards.iter().flat_map(|s| s.entries())
    }

    /// Sum of live counter register bits across all shards (`O(shards)`;
    /// each shard maintains its total incrementally).
    #[must_use]
    pub fn state_bits_total(&self) -> u64 {
        self.shards.iter().map(|s| s.state_bits()).sum()
    }

    /// Distinct keys per accuracy tier (`counts[t]` = keys in tier `t`).
    /// A never-tiered engine reports every key in tier 0.
    #[must_use]
    pub fn tier_counts(&self) -> Vec<u64> {
        let mut counts = Vec::new();
        for shard in &self.shards {
            shard.tier_counts_into(&mut counts);
        }
        counts
    }

    /// The accuracy tier `key` currently sits in (`None` for an
    /// untracked key; tier 0 is the default for every key never
    /// migrated).
    #[must_use]
    pub fn tier_of(&self, key: u64) -> Option<u8> {
        self.shards[self.shard_of(key)].tier_of(key)
    }

    /// Engine summary for reports. Ingest and checkpointer diagnostics
    /// read zero here; fold them in with [`EngineStats::with_ingest`] and
    /// [`EngineStats::with_checkpointer`] when those layers are attached.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            shards: self.shards.len(),
            keys: self.len(),
            events: self.total_events(),
            state_bits_total: self.state_bits_total(),
            tier_keys: self.tier_counts(),
            max_shard_keys: self.shards.iter().map(|s| s.len()).max().unwrap_or(0),
            dirty_shards: self
                .shards
                .iter()
                .filter(|s| s.dirty_epoch() == self.epoch)
                .count(),
            last_freeze_ns: self.last_freeze_ns,
            checkpoint_lag_events: 0,
            queue_depth: 0,
            dropped_batches: 0,
            dropped_events: 0,
            producers: Vec::new(),
        }
    }

    /// Folds every counter in every shard into a single counter via the
    /// family's merge law — the cross-shard aggregate. The result is
    /// distributed as a single counter that processed the whole stream
    /// (Remark 2.4), so it agrees with [`CounterEngine::total_events`]
    /// within the family's `(ε, δ)` guarantee.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::MergeMismatch`] — unreachable when all
    /// counters are clones of one template, as here, but surfaced rather
    /// than swallowed.
    pub fn merged_total(&self, rng: &mut dyn RandomSource) -> Result<C, CoreError>
    where
        C: Mergeable,
    {
        let mut total = self.template.clone();
        for shard in &self.shards {
            for c in shard.counters() {
                total.merge_from(c, rng)?;
            }
        }
        Ok(total)
    }
}

impl CounterEngine<ac_core::CounterFamily> {
    /// Applies a migration plan: each move re-seeds its key's counter in
    /// the ladder's target spec (estimate-preserving, deterministic — the
    /// shard RNG streams are untouched) and tags the key with its new
    /// tier. Moves naming untracked keys are skipped (a detector window
    /// can outlive an eviction). Returns the number of keys migrated.
    ///
    /// Runs on whatever thread calls it — the store runs it on the
    /// applier's burst hook, between bursts, when the engine is
    /// quiescent — and marks migrated shards dirty so copy-on-write
    /// snapshots and delta checkpoints see the moves.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] when a move names a tier
    /// outside `ladder`, and propagates [`ac_core::CounterSpec::build`]
    /// errors from invalid specs.
    pub fn apply_migrations(
        &mut self,
        ladder: &[ac_core::CounterSpec],
        moves: &[ac_core::TierMove],
    ) -> Result<u64, CoreError> {
        let mut migrated = 0u64;
        let mut migrated_shards = vec![false; self.shards.len()];
        for m in moves {
            let Some(spec) = ladder.get(usize::from(m.tier)) else {
                return Err(CoreError::InvalidState {
                    what: "tier move names a rung outside the ladder",
                });
            };
            let idx = self.shard_of(m.key);
            let shard = Arc::make_mut(&mut self.shards[idx]);
            if shard.migrate_key(m.key, spec, m.tier)? {
                shard.touch(self.epoch);
                migrated_shards[idx] = true;
                migrated += 1;
            }
        }
        // A migration changes counter state without moving a shard's
        // `events` or `len`, and `touch` is a no-op on an already-dirty
        // shard — the fold caches' `(dirty_epoch, events, len)` validity
        // key cannot see it. Evict migrated shards' slots explicitly so
        // no stale fold survives.
        if migrated > 0 {
            let mut folds = self.fold_cache.lock().expect("fold cache lock");
            let mut tiered = self
                .tiered_fold_cache
                .lock()
                .expect("tiered fold cache lock");
            for (idx, hit) in migrated_shards.iter().enumerate() {
                if *hit {
                    folds[idx] = None;
                    tiered[idx] = None;
                }
            }
        }
        Ok(migrated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, MorrisCounter, NelsonYuCounter, NyParams};
    use ac_randkit::Xoshiro256PlusPlus;

    fn cfg(shards: usize) -> EngineConfig {
        EngineConfig { shards, seed: 42 }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = CounterEngine::new(ExactCounter::new(), cfg(0));
    }

    #[test]
    fn exact_cells_count_exactly() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg(8));
        e.apply(&[(1, 10), (2, 20), (1, 5), (3, 1)]);
        assert_eq!(e.estimate(1), Some(15.0));
        assert_eq!(e.estimate(2), Some(20.0));
        assert_eq!(e.estimate(3), Some(1.0));
        assert_eq!(e.estimate(99), None);
        assert_eq!(e.len(), 3);
        assert_eq!(e.total_events(), 36);
    }

    #[test]
    fn template_is_reset_before_cloning() {
        let mut dirty = ExactCounter::new();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        dirty.increment_by(1_000, &mut rng);
        let mut e = CounterEngine::new(dirty, cfg(4));
        e.apply(&[(7, 3)]);
        assert_eq!(e.estimate(7), Some(3.0));
    }

    #[test]
    fn keys_spread_across_shards() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg(16));
        let batch: Vec<(u64, u64)> = (0..10_000u64).map(|k| (k, 1)).collect();
        e.apply(&batch);
        let stats = e.stats();
        assert_eq!(stats.keys, 10_000);
        assert_eq!(stats.events, 10_000);
        // A balanced hash keeps the fullest shard within ~3x of the mean.
        assert!(
            stats.max_shard_keys < 3 * 10_000 / 16,
            "max shard load {}",
            stats.max_shard_keys
        );
    }

    #[test]
    fn parallel_apply_is_bit_identical_to_sequential() {
        let p = NyParams::new(0.2, 8).unwrap();
        let template = NelsonYuCounter::new(p);
        let mut seq = CounterEngine::new(template.clone(), cfg(8));
        let mut par = CounterEngine::new(template, cfg(8));
        let mut keygen = SplitMix64::new(9);
        let batch: Vec<(u64, u64)> = (0..5_000)
            .map(|_| (keygen.next_u64() % 500, 1 + keygen.next_u64() % 1_000))
            .collect();
        seq.apply(&batch);
        par.apply_parallel(&batch);
        for &(key, _) in &batch {
            assert_eq!(seq.counter(key), par.counter(key), "key {key}");
        }
        assert_eq!(seq.total_events(), par.total_events());
    }

    #[test]
    fn merged_total_is_exact_for_exact_counters() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg(8));
        let batch: Vec<(u64, u64)> = (0..1_000u64).map(|k| (k, k % 17 + 1)).collect();
        e.apply(&batch);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let total = e.merged_total(&mut rng).unwrap();
        assert_eq!(total.count(), e.total_events());
    }

    #[test]
    fn merged_total_tracks_events_for_morris() {
        // 200 keys x 5_000 increments: the merged Morris counter's
        // estimate concentrates around the exact event total.
        let mut e = CounterEngine::new(MorrisCounter::new(0.05).unwrap(), cfg(8));
        let batch: Vec<(u64, u64)> = (0..200u64).map(|k| (k, 5_000)).collect();
        e.apply(&batch);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let total = e.merged_total(&mut rng).unwrap();
        let n = e.total_events() as f64;
        let rel = (total.estimate() - n).abs() / n;
        // sd/N = sqrt(a/2) ~ 16 %; allow a wide, seed-stable band.
        assert!(rel < 0.6, "merged relative error {rel}");
    }

    #[test]
    fn stats_audit_memory() {
        let mut e = CounterEngine::new(MorrisCounter::new(1.0).unwrap(), cfg(4));
        e.apply(&[(1, 1_000), (2, 1_000_000)]);
        let stats = e.stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.keys, 2);
        // Two Morris registers: a handful of bits each, never log2(N).
        assert!(stats.state_bits_total < 16, "{stats:?}");
        // No ingest or checkpoint layer attached: diagnostics read zero.
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.dropped_batches, 0);
        assert_eq!(stats.checkpoint_lag_events, 0);
        assert_eq!(stats.last_freeze_ns, 0, "no freeze has happened");
        assert_eq!(
            e.iter().count(),
            2,
            "iter must visit every (key, counter) pair"
        );
    }

    #[test]
    fn dirty_shards_track_writes_within_the_current_epoch() {
        let mut e = CounterEngine::new(ExactCounter::new(), cfg(8));
        assert_eq!(e.stats().dirty_shards, 0);
        e.apply(&[(1, 1)]);
        assert_eq!(e.stats().dirty_shards, 1, "one shard written");
        let batch: Vec<(u64, u64)> = (0..1_000u64).map(|k| (k, 1)).collect();
        e.apply(&batch);
        assert_eq!(e.stats().dirty_shards, 8, "all shards written");
        // A freeze opens a new epoch: the debt resets.
        let _snap = e.snapshot();
        assert_eq!(e.stats().dirty_shards, 0, "fresh epoch after freeze");
        e.apply(&[(2, 1)]);
        assert_eq!(e.stats().dirty_shards, 1);
    }

    #[test]
    fn config_is_preserved() {
        let e = CounterEngine::new(ExactCounter::new(), cfg(8));
        assert_eq!(e.config(), cfg(8));
    }
}
