//! A persistent worker pool for checkpoint section fan-out.
//!
//! PR 9 parallelized checkpoint encode/restore with per-call
//! [`std::thread::scope`], which pays thread spawn + join on every
//! frame. That was fine for occasional full checkpoints; delta
//! replication cuts frames continuously, where sub-millisecond encodes
//! are routine and per-call spawns dominate. This module keeps one
//! process-wide pool of parked workers (first use spins it up, process
//! exit reaps it) and hands fan-outs to them through a job queue.
//!
//! The calling thread always participates in the claim loop itself, so
//! a fan-out makes progress even if every pool worker is busy with
//! other frames — helpers only speed it up. And while a caller waits
//! for its helpers to report, it services the shared job queue itself,
//! so nested or re-entrant fan-outs (which can occupy the entire pool
//! with waiters) stay deadlock-free: some thread always runs the next
//! queued job.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    jobs: Mutex<VecDeque<Job>>,
    doorbell: Condvar,
}

struct WorkerPool {
    shared: Arc<PoolShared>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| {
        let width = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let shared = Arc::new(PoolShared {
            jobs: Mutex::new(VecDeque::new()),
            doorbell: Condvar::new(),
        });
        for i in 0..width {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ac-ckpt-pool-{i}"))
                .spawn(move || loop {
                    let job = {
                        let mut q = shared.jobs.lock().expect("checkpoint pool queue");
                        loop {
                            if let Some(job) = q.pop_front() {
                                break job;
                            }
                            q = shared.doorbell.wait(q).expect("checkpoint pool queue");
                        }
                    };
                    // Jobs are panic-fenced by `fan_out`, so a worker
                    // survives any frame and goes back to the queue.
                    job();
                })
                .expect("spawn checkpoint pool worker");
        }
        WorkerPool { shared }
    })
}

/// Runs `work(pos)` for every `pos` in `0..items` across `workers`
/// claim loops (the caller plus `workers - 1` pool helpers, all
/// stealing positions off one shared counter — unit costs are skewed,
/// so static striping would idle threads behind the heaviest unit) and
/// returns the `(pos, result)` pairs in whatever completion order they
/// landed. Callers that need frame order sort by `pos`; parallelism
/// never changes *what* is produced, only who produces it.
///
/// A panic inside `work` is forwarded to the caller via
/// [`resume_unwind`] after the pool workers have been fenced off the
/// poisoned run; the pool itself stays serviceable.
pub(crate) fn fan_out<T, F>(workers: usize, items: usize, work: F) -> Vec<(usize, T)>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let claim_all = move |work: &F, next: &AtomicUsize| {
        let mut out = Vec::new();
        loop {
            let pos = next.fetch_add(1, Ordering::Relaxed);
            if pos >= items {
                break out;
            }
            out.push((pos, work(pos)));
        }
    };
    if workers <= 1 || items <= 1 {
        let next = AtomicUsize::new(0);
        return claim_all(&work, &next);
    }

    let work = Arc::new(work);
    let next = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel();
    let helpers = workers.min(items) - 1;
    {
        let mut q = pool().shared.jobs.lock().expect("checkpoint pool queue");
        for _ in 0..helpers {
            let work = Arc::clone(&work);
            let next = Arc::clone(&next);
            let tx = tx.clone();
            q.push_back(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| claim_all(&work, &next)));
                let _ = tx.send(result);
            }));
        }
    }
    pool().shared.doorbell.notify_all();
    drop(tx);

    let mut all = claim_all(&work, &next);
    let mut failure = None;
    let mut pending = helpers;
    while pending > 0 {
        let report = match rx.try_recv() {
            Ok(report) => Some(report),
            Err(mpsc::TryRecvError::Disconnected) => break,
            Err(mpsc::TryRecvError::Empty) => {
                // No report yet: service the shared queue instead of
                // blocking. The job we run may be one of our own
                // helpers that never got a worker, or another
                // fan-out's — either way the queue drains and some
                // waiter (possibly us) gets unblocked. Only when the
                // queue is empty do we actually wait, and then with a
                // timeout so a job enqueued after our check is never
                // stranded behind a blocked waiter.
                let job = {
                    let mut q = pool().shared.jobs.lock().expect("checkpoint pool queue");
                    q.pop_front()
                };
                match job {
                    Some(job) => {
                        job();
                        None
                    }
                    None => match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(report) => Some(report),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    },
                }
            }
        };
        if let Some(report) = report {
            pending -= 1;
            match report {
                Ok(part) => all.extend(part),
                Err(payload) => {
                    // Burn the counter so straggling helpers exit at
                    // once (half-range leaves headroom for their last
                    // wasted increments); keep draining so the pool is
                    // clean before we re-raise on the calling thread.
                    next.store(usize::MAX >> 1, Ordering::Relaxed);
                    failure.get_or_insert(payload);
                }
            }
        }
    }
    if let Some(payload) = failure {
        resume_unwind(payload);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_position_exactly_once() {
        for workers in [1, 2, 3, 8, 64] {
            let mut got = fan_out(workers, 100, |pos| pos * 2);
            got.sort_unstable_by_key(|&(pos, _)| pos);
            assert_eq!(got.len(), 100);
            for (i, (pos, val)) in got.into_iter().enumerate() {
                assert_eq!((pos, val), (i, i * 2));
            }
        }
    }

    #[test]
    fn empty_fan_out_is_a_no_op() {
        assert!(fan_out(4, 0, |pos| pos).is_empty());
    }

    #[test]
    fn worker_panic_reaches_the_caller_and_pool_survives() {
        let attempt = std::panic::catch_unwind(|| {
            fan_out(4, 64, |pos| {
                assert!(pos != 17, "poisoned position");
                pos
            })
        });
        assert!(attempt.is_err());
        // The pool still serves fresh fan-outs afterwards.
        let ok = fan_out(4, 32, |pos| pos + 1);
        assert_eq!(ok.len(), 32);
    }

    #[test]
    fn reentrant_fan_out_cannot_deadlock() {
        // Saturate with nested fan-outs; caller participation guarantees
        // progress even if every pool worker is occupied.
        let outer = fan_out(8, 8, |pos| {
            fan_out(8, 8, move |inner| pos * 8 + inner).len()
        });
        assert!(outer.iter().all(|&(_, n)| n == 8));
    }
}
