//! The one error type every fallible `Store` path returns.
//!
//! The layered expert API keeps its precise per-layer errors
//! ([`CheckpointError`](crate::CheckpointError) for the durable format,
//! [`CoreError`](ac_core::CoreError) for counter parameters); the service
//! facade wraps them — together with manifest, recovery, I/O, and ingest
//! conditions — in a single `#[non_exhaustive]` enum so callers match one
//! type at the service boundary.

use crate::checkpoint::CheckpointError;
use ac_core::CoreError;
use std::fmt;
use std::path::PathBuf;

/// Why a `Store` operation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// A counter-parameter or merge error from `ac-core` (e.g. an invalid
    /// [`CounterSpec`](ac_core::CounterSpec)).
    Core(CoreError),
    /// A checkpoint could not be read, validated, or restored.
    Checkpoint(CheckpointError),
    /// Filesystem I/O failed (durability directory, manifest, frames).
    Io(std::io::Error),
    /// No `store.manifest` exists in the directory — it was never a store
    /// durability directory, or the manifest was deleted.
    ManifestMissing {
        /// The manifest path that was probed.
        path: PathBuf,
    },
    /// The manifest exists but cannot be trusted: empty, bad magic, a
    /// corrupt header, or a mismatch against the running configuration.
    ManifestCorrupt {
        /// Human-readable description.
        what: String,
    },
    /// The manifest lists frames, but no base + delta chain on disk
    /// restores — every candidate chain was missing, truncated, or
    /// corrupt past repair.
    NoRestorableChain {
        /// Frames listed in the manifest.
        frames: usize,
        /// Restorable chains attempted (newest first).
        chains_tried: usize,
    },
    /// Another live store owns the durability directory (its `store.lock`
    /// names a process that still exists). Two concurrent writers would
    /// clobber each other's frames and interleave manifest lines.
    StoreBusy {
        /// The lock file that was held.
        path: PathBuf,
        /// The pid recorded in the lock (0 when unreadable).
        pid: u32,
    },
    /// An ingest batch was refused (queue closed, or full under the drop
    /// policy) on a path that promised losslessness.
    BatchRefused {
        /// Events in the refused batch.
        dropped_events: u64,
    },
    /// The store is already closed.
    Closed,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "counter error: {e}"),
            EngineError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            EngineError::Io(e) => write!(f, "store I/O error: {e}"),
            EngineError::ManifestMissing { path } => {
                write!(f, "no store manifest at {}", path.display())
            }
            EngineError::ManifestCorrupt { what } => {
                write!(f, "store manifest is corrupt: {what}")
            }
            EngineError::NoRestorableChain {
                frames,
                chains_tried,
            } => write!(
                f,
                "no restorable checkpoint chain ({frames} frames in the manifest, \
                 {chains_tried} chains tried)"
            ),
            EngineError::StoreBusy { path, pid } => write!(
                f,
                "durability directory is owned by a live store (lock {} held by pid {pid})",
                path.display()
            ),
            EngineError::BatchRefused { dropped_events } => {
                write!(f, "ingest refused a batch of {dropped_events} events")
            }
            EngineError::Closed => write!(f, "store is closed"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Checkpoint(e) => Some(e),
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// Collapses a writer-side [`SendError`](crate::SendError) into the
/// service error. The batch itself is dropped by this conversion — paths
/// that want to retry or spill it should match the `SendError` instead.
impl From<crate::SendError> for EngineError {
    fn from(e: crate::SendError) -> Self {
        match e {
            crate::SendError::Full(batch) => EngineError::BatchRefused {
                dropped_events: batch.events(),
            },
            crate::SendError::Closed(_) => EngineError::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources_are_informative() {
        let errors: Vec<EngineError> = vec![
            CoreError::InvalidEpsilon { got: 0.9 }.into(),
            CheckpointError::Truncated.into(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into(),
            EngineError::ManifestMissing {
                path: PathBuf::from("/tmp/x"),
            },
            EngineError::ManifestCorrupt {
                what: "empty file".into(),
            },
            EngineError::NoRestorableChain {
                frames: 3,
                chains_tried: 2,
            },
            EngineError::BatchRefused { dropped_events: 10 },
            EngineError::Closed,
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        use std::error::Error;
        assert!(errors[0].source().is_some());
        assert!(errors[3].source().is_none());
    }
}
