//! The on-disk store manifest: a small, append-only, line-checksummed
//! index of a durability directory, written by the
//! [`BackgroundCheckpointer`](crate::BackgroundCheckpointer) and read by
//! `Store::open` to discover what a directory holds without parsing every
//! frame.
//!
//! ## Format
//!
//! A text file (`store.manifest`) of one header line plus one line per
//! written frame, each line ending in its own FNV-1a checksum:
//!
//! ```text
//! acstore v1 spec=<hex,…> shards=<n> seed=<hex> [tiers=<hex,…;…> budget=<n>] sum=<hex>
//! frame session=<n> file=<name> kind=<full|delta> epoch=<n> events=<n>
//!       keys=<n> chain=<hex> parent=<hex> marks=<p:enq:app,…|-> sum=<hex>
//! ```
//!
//! The header records the [`CounterSpec`] (as its stable word encoding)
//! and the [`EngineConfig`] — everything `Store::open` needs to rebuild
//! the template before any frame is touched. A **tiered** store
//! additionally records its tier ladder (each rung's spec word-encoded,
//! rungs `;`-separated) and bit budget: `Store::open` must know the
//! ladder before parsing any version-3 frame. The tokens are trailing
//! and optional, so pre-tiering loaders (which ignore tokens past
//! `seed=`) still read a tiered manifest's spec and config. Frame lines
//! carry the frame file name, its chain digests (so candidate chains are
//! discoverable without reading frame files), and the per-producer
//! applied sequence marks at the frame's freeze (the exactly-once replay
//! cursor).
//!
//! ## Crash behavior
//!
//! Frame files are fsynced before their line is appended, and the append
//! itself is fsynced, so a listed frame's bytes are durable before the
//! listing is. A crash mid-append leaves a torn final line, which fails
//! its per-line checksum; the loader **skips** any bad frame line and
//! keeps parsing — every line seals itself, so later intact lines are
//! still trustworthy, and a new session appending after a torn tail
//! (the appender starts a fresh line when the file does not end in a
//! newline) stays discoverable. Frame-level integrity never rests on
//! the manifest alone: chains are re-validated by their own checksums
//! and chain digests at restore. A bad **header** is unrecoverable and
//! surfaces as [`EngineError::ManifestCorrupt`].

use crate::checkpoint::CheckpointKind;
use crate::error::EngineError;
use crate::ingest::ProducerMark;
use crate::registry::EngineConfig;
use ac_core::CounterSpec;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File name of the manifest inside a durability directory.
pub const MANIFEST_FILE: &str = "store.manifest";

/// The tiering identity a manifest header pins for a tiered store: the
/// ladder's specs (rung 0 = default) and the global bit budget. Part of
/// the durable identity — a directory written under one ladder cannot be
/// reopened under another, because its version-3 frames are fingerprinted
/// (and their states encoded) against that exact ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestTiering {
    /// The tier ladder, cheapest first.
    pub ladder: Vec<CounterSpec>,
    /// The global ceiling on total counter-state bits.
    pub budget_bits: u64,
}

/// What the checkpointer needs to know to keep a manifest: the spec and
/// config the header pins, and this process's session number (frame
/// files are namespaced per session so restarted stores never clobber
/// earlier frames).
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestInfo {
    /// The runtime family specification recorded in the header.
    pub spec: CounterSpec,
    /// The engine configuration recorded in the header.
    pub config: EngineConfig,
    /// This writer session's number (0 for the first; `Store::open`
    /// continues at [`Manifest::next_session`]).
    pub session: u64,
    /// The tier ladder and budget, for a tiered store.
    pub tiering: Option<ManifestTiering>,
}

/// One frame line of the manifest.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ManifestFrame {
    /// The writer session that produced the frame.
    pub session: u64,
    /// Frame file name, relative to the directory.
    pub file: String,
    /// Full or delta.
    pub kind: CheckpointKind,
    /// Freeze epoch of the frame.
    pub epoch: u64,
    /// Engine events at the frame's freeze.
    pub events: u64,
    /// Engine keys at the frame's freeze.
    pub keys: u64,
    /// The frame's own chain digest.
    pub chain: u64,
    /// The parent's chain digest (0 for a full frame).
    pub parent_chain: u64,
    /// Per-producer sequence marks at the frame's freeze — the replay
    /// cursor for exactly-once recovery.
    pub marks: Vec<ProducerMark>,
}

/// A parsed manifest: the header plus every intact frame line, in write
/// order.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Manifest {
    /// The runtime family specification from the header.
    pub spec: CounterSpec,
    /// The engine configuration from the header.
    pub config: EngineConfig,
    /// The tier ladder and budget from the header, when the directory
    /// belongs to a tiered store.
    pub tiering: Option<ManifestTiering>,
    /// Intact frame lines, oldest first (a torn tail line and anything
    /// after it are dropped at load).
    pub frames: Vec<ManifestFrame>,
}

/// FNV-1a over a line's content — the same cheap integrity check the
/// checkpoint payloads use, applied per line.
fn line_checksum(content: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in content.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn seal(mut line: String) -> String {
    let sum = line_checksum(&line);
    let _ = write!(line, " sum={sum:016x}");
    line
}

/// Splits a sealed line into (content, stored checksum); `None` when the
/// seal is missing or unparseable.
fn unseal(line: &str) -> Option<&str> {
    let (content, sum) = line.rsplit_once(" sum=")?;
    let stored = u64::from_str_radix(sum, 16).ok()?;
    (stored == line_checksum(content)).then_some(content)
}

fn field<'a>(tokens: &mut impl Iterator<Item = &'a str>, key: &str) -> Option<&'a str> {
    tokens.next()?.strip_prefix(key)
}

fn parse_u64(s: &str) -> Option<u64> {
    s.parse().ok()
}

fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

impl Manifest {
    /// The manifest path inside `dir`.
    #[must_use]
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// The session number a new writer over this directory should use.
    #[must_use]
    pub fn next_session(&self) -> u64 {
        self.frames.iter().map(|f| f.session + 1).max().unwrap_or(0)
    }

    /// Loads and verifies the manifest in `dir`.
    ///
    /// # Errors
    ///
    /// [`EngineError::ManifestMissing`] when no manifest file exists,
    /// [`EngineError::ManifestCorrupt`] for an empty file or a bad
    /// header, [`EngineError::Io`] for underlying read failures. Torn or
    /// corrupt **frame** lines are not errors: the intact prefix loads
    /// (see the module docs).
    pub fn load(dir: &Path) -> Result<Self, EngineError> {
        let path = Self::path_in(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(EngineError::ManifestMissing { path })
            }
            Err(e) => return Err(e.into()),
        };
        let corrupt = |what: &str| EngineError::ManifestCorrupt { what: what.into() };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty manifest"))?;
        let header = unseal(header).ok_or_else(|| corrupt("header checksum mismatch"))?;
        let mut tokens = header.split_whitespace();
        if tokens.next() != Some("acstore") || tokens.next() != Some("v1") {
            return Err(corrupt("bad magic or version"));
        }
        let spec_words: Vec<u64> = field(&mut tokens, "spec=")
            .ok_or_else(|| corrupt("missing spec"))?
            .split(',')
            .map(parse_hex)
            .collect::<Option<_>>()
            .ok_or_else(|| corrupt("unparseable spec words"))?;
        let spec = CounterSpec::decode_words(&spec_words)
            .map_err(|e| corrupt(&format!("invalid counter spec: {e}")))?;
        let shards = field(&mut tokens, "shards=")
            .and_then(parse_u64)
            .ok_or_else(|| corrupt("missing shard count"))?;
        let seed = field(&mut tokens, "seed=")
            .and_then(parse_hex)
            .ok_or_else(|| corrupt("missing seed"))?;
        let config = EngineConfig::new()
            .with_shards(shards as usize)
            .with_seed(seed);

        // Trailing tokens are the extension point: pre-tiering headers
        // stop at seed=, tiered headers add tiers= and budget=. Either
        // both tokens appear or neither — half a tiering is corrupt.
        let tiering = match field(&mut tokens, "tiers=") {
            None => None,
            Some(rungs) => {
                let ladder: Vec<CounterSpec> = rungs
                    .split(';')
                    .map(|rung| {
                        let words: Vec<u64> =
                            rung.split(',').map(parse_hex).collect::<Option<_>>()?;
                        CounterSpec::decode_words(&words).ok()
                    })
                    .collect::<Option<_>>()
                    .ok_or_else(|| corrupt("unparseable tier ladder"))?;
                let budget_bits = field(&mut tokens, "budget=")
                    .and_then(parse_u64)
                    .ok_or_else(|| corrupt("tier ladder without a budget"))?;
                Some(ManifestTiering {
                    ladder,
                    budget_bits,
                })
            }
        };

        let mut frames = Vec::new();
        for line in lines {
            // A torn or corrupt frame line is skipped, not fatal: each
            // line carries its own checksum, so the lines around it stay
            // trustworthy (see the module docs on crash behavior).
            if let Some(frame) = unseal(line).and_then(Self::parse_frame) {
                frames.push(frame);
            }
        }
        Ok(Self {
            spec,
            config,
            tiering,
            frames,
        })
    }

    fn parse_frame(content: &str) -> Option<ManifestFrame> {
        let mut t = content.split_whitespace();
        if t.next() != Some("frame") {
            return None;
        }
        let session = field(&mut t, "session=").and_then(parse_u64)?;
        let file = field(&mut t, "file=")?.to_string();
        let kind = match field(&mut t, "kind=")? {
            "full" => CheckpointKind::Full,
            "delta" => CheckpointKind::Delta,
            _ => return None,
        };
        let epoch = field(&mut t, "epoch=").and_then(parse_u64)?;
        let events = field(&mut t, "events=").and_then(parse_u64)?;
        let keys = field(&mut t, "keys=").and_then(parse_u64)?;
        let chain = field(&mut t, "chain=").and_then(parse_hex)?;
        let parent_chain = field(&mut t, "parent=").and_then(parse_hex)?;
        let marks_str = field(&mut t, "marks=")?;
        let marks = if marks_str == "-" {
            Vec::new()
        } else {
            marks_str
                .split(',')
                .map(|m| {
                    let mut parts = m.split(':');
                    let producer = parse_u64(parts.next()?)?;
                    let enqueued_seq = parse_u64(parts.next()?)?;
                    let applied_seq = parse_u64(parts.next()?)?;
                    parts.next().is_none().then_some(ProducerMark {
                        producer,
                        enqueued_seq,
                        applied_seq,
                    })
                })
                .collect::<Option<_>>()?
        };
        t.next().is_none().then_some(ManifestFrame {
            session,
            file,
            kind,
            epoch,
            events,
            keys,
            chain,
            parent_chain,
            marks,
        })
    }

    /// Renders the header line for `spec`/`config` (sealed), with the
    /// optional trailing tiering tokens.
    fn header_line(
        spec: &CounterSpec,
        config: &EngineConfig,
        tiering: Option<&ManifestTiering>,
    ) -> String {
        let hex_words = |s: &CounterSpec| {
            s.encode_words()
                .iter()
                .map(|w| format!("{w:x}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut line = format!(
            "acstore v1 spec={} shards={} seed={:x}",
            hex_words(spec),
            config.shards,
            config.seed
        );
        if let Some(t) = tiering {
            let rungs: Vec<String> = t.ladder.iter().map(hex_words).collect();
            let _ = write!(line, " tiers={} budget={}", rungs.join(";"), t.budget_bits);
        }
        seal(line)
    }

    /// Creates the manifest header in `dir` if absent; if present,
    /// verifies the existing header pins the same spec and config.
    ///
    /// # Errors
    ///
    /// [`EngineError::ManifestCorrupt`] when an existing manifest
    /// disagrees (a directory must never silently serve two different
    /// deployments), plus load/I/O errors.
    pub(crate) fn ensure(
        dir: &Path,
        spec: &CounterSpec,
        config: &EngineConfig,
        tiering: Option<&ManifestTiering>,
    ) -> Result<(), EngineError> {
        match Self::load(dir) {
            Ok(existing) => {
                if existing.spec != *spec {
                    return Err(EngineError::ManifestCorrupt {
                        what: format!(
                            "directory belongs to family {}, store configured for {}",
                            existing.spec, spec
                        ),
                    });
                }
                if existing.config != *config {
                    return Err(EngineError::ManifestCorrupt {
                        what: format!(
                            "directory pins config {:?}, store configured with {:?}",
                            existing.config, config
                        ),
                    });
                }
                if existing.tiering.as_ref() != tiering {
                    // The ladder is part of the durable identity: v3
                    // frames encode states against it, so a directory
                    // cannot change (or gain, or lose) tiering in place.
                    return Err(EngineError::ManifestCorrupt {
                        what: format!(
                            "directory pins tiering {:?}, store configured with {:?}",
                            existing.tiering, tiering
                        ),
                    });
                }
                Ok(())
            }
            Err(EngineError::ManifestMissing { .. }) => {
                let line = Self::header_line(spec, config, tiering);
                let mut f = std::fs::File::create(Self::path_in(dir))?;
                writeln!(f, "{line}")?;
                f.sync_all()?;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Renders one sealed frame line.
    fn frame_line(frame: &ManifestFrame) -> String {
        let marks = if frame.marks.is_empty() {
            "-".to_string()
        } else {
            frame
                .marks
                .iter()
                .map(|m| format!("{}:{}:{}", m.producer, m.enqueued_seq, m.applied_seq))
                .collect::<Vec<_>>()
                .join(",")
        };
        let kind = match frame.kind {
            CheckpointKind::Full => "full",
            CheckpointKind::Delta => "delta",
        };
        seal(format!(
            "frame session={} file={} kind={kind} epoch={} events={} keys={} \
             chain={:016x} parent={:016x} marks={marks}",
            frame.session,
            frame.file,
            frame.epoch,
            frame.events,
            frame.keys,
            frame.chain,
            frame.parent_chain
        ))
    }

    /// Appends one frame line (after the frame file is durably written).
    pub(crate) fn append_frame(dir: &Path, frame: &ManifestFrame) -> std::io::Result<()> {
        let line = Self::frame_line(frame);
        let path = Manifest::path_in(dir);
        // A crash can leave the file without a trailing newline (torn
        // final line); start a fresh line so this frame's line seals on
        // its own instead of merging into the torn fragment.
        let torn_tail = !std::fs::read(&path)?.ends_with(b"\n");
        let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
        if torn_tail {
            writeln!(f)?;
        }
        writeln!(f, "{line}")?;
        // The line is the commit point of the frame: make it durable
        // before the writer moves on (the frame file was synced first).
        f.sync_all()
    }

    /// Atomically replaces the whole manifest with `frames` under the
    /// same header — the compaction commit point. The new text is
    /// written to a temp file, fsynced, then renamed over
    /// [`MANIFEST_FILE`] (and the directory fsynced), so readers see
    /// either the old chain or the new one in full; a crash anywhere
    /// before the rename leaves the old manifest — and the chain it
    /// lists — untouched and valid.
    pub(crate) fn rewrite(
        dir: &Path,
        spec: &CounterSpec,
        config: &EngineConfig,
        tiering: Option<&ManifestTiering>,
        frames: &[ManifestFrame],
    ) -> std::io::Result<()> {
        let mut text = Self::header_line(spec, config, tiering);
        text.push('\n');
        for frame in frames {
            text.push_str(&Self::frame_line(frame));
            text.push('\n');
        }
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, Self::path_in(dir))?;
        // Rename durability needs the *directory* entry synced.
        std::fs::File::open(dir)?.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CounterSpec {
        CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 8,
        }
    }

    fn cfg() -> EngineConfig {
        EngineConfig::new().with_shards(4).with_seed(0xABCD)
    }

    fn frame(session: u64, seq: u64, kind: CheckpointKind) -> ManifestFrame {
        ManifestFrame {
            session,
            file: format!("ckpt-{session:03}-{seq:05}.bin"),
            kind,
            epoch: seq + 1,
            events: 100 * (seq + 1),
            keys: 10 * (seq + 1),
            chain: 0xDEAD_0000 + seq,
            parent_chain: if kind == CheckpointKind::Full {
                0
            } else {
                0xDEAD_0000 + seq - 1
            },
            marks: vec![ProducerMark {
                producer: 0,
                enqueued_seq: seq + 2,
                applied_seq: seq + 1,
            }],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ac-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn header_and_frames_round_trip() {
        let dir = tmp_dir("roundtrip");
        Manifest::ensure(&dir, &spec(), &cfg(), None).unwrap();
        let f0 = frame(0, 0, CheckpointKind::Full);
        let f1 = frame(0, 1, CheckpointKind::Delta);
        Manifest::append_frame(&dir, &f0).unwrap();
        Manifest::append_frame(&dir, &f1).unwrap();

        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.spec, spec());
        assert_eq!(m.config, cfg());
        assert_eq!(m.frames, vec![f0, f1]);
        assert_eq!(m.next_session(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_swaps_the_whole_chain_atomically() {
        let dir = tmp_dir("rewrite");
        Manifest::ensure(&dir, &spec(), &cfg(), None).unwrap();
        for seq in 0..4 {
            let kind = if seq == 0 {
                CheckpointKind::Full
            } else {
                CheckpointKind::Delta
            };
            Manifest::append_frame(&dir, &frame(0, seq, kind)).unwrap();
        }

        // The compaction commit: a folded base aliasing the old tip,
        // plus the one delta that was cut while the fold ran.
        let mut cbase = frame(0, 9, CheckpointKind::Full);
        cbase.file = "ckpt-000-c00009-full.bin".to_string();
        cbase.parent_chain = 0xDEAD_0002; // folded tip's chain digest
        let tail = frame(0, 3, CheckpointKind::Delta);
        Manifest::rewrite(&dir, &spec(), &cfg(), None, &[cbase.clone(), tail.clone()]).unwrap();

        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.spec, spec(), "header survives the swap");
        assert_eq!(m.config, cfg());
        assert_eq!(m.frames, vec![cbase, tail.clone()]);
        assert_eq!(m.next_session(), 1);
        assert!(
            !dir.join("store.manifest.tmp").exists(),
            "temp file consumed by the rename"
        );

        // Appends after a rewrite keep working on the swapped file.
        let f4 = frame(0, 4, CheckpointKind::Delta);
        Manifest::append_frame(&dir, &f4).unwrap();
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.frames.len(), 3);
        assert_eq!(m.frames[2], f4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_empty_manifests_are_typed() {
        let dir = tmp_dir("missing");
        assert!(matches!(
            Manifest::load(&dir),
            Err(EngineError::ManifestMissing { .. })
        ));
        std::fs::write(Manifest::path_in(&dir), "").unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(EngineError::ManifestCorrupt { .. })
        ));
        std::fs::write(Manifest::path_in(&dir), "not a manifest at all\n").unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(EngineError::ManifestCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_frame_line_is_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        Manifest::ensure(&dir, &spec(), &cfg(), None).unwrap();
        let f0 = frame(0, 0, CheckpointKind::Full);
        Manifest::append_frame(&dir, &f0).unwrap();
        // Simulate a crash mid-append: write half a line, no newline.
        let mut text = std::fs::read_to_string(Manifest::path_in(&dir)).unwrap();
        text.push_str("frame session=0 file=ckpt-000-00001.bin kind=delta epo");
        std::fs::write(Manifest::path_in(&dir), text).unwrap();

        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.frames, vec![f0.clone()], "torn tail line is skipped");

        // A new session appending after the torn fragment must start a
        // fresh line: its frame stays discoverable, and the fragment
        // stays an isolated bad line.
        let f1 = frame(1, 1, CheckpointKind::Full);
        Manifest::append_frame(&dir, &f1).unwrap();
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.frames, vec![f0, f1], "post-crash appends are visible");
        assert_eq!(m.next_session(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_mid_file_line_is_skipped_not_poisoning() {
        let dir = tmp_dir("midbad");
        Manifest::ensure(&dir, &spec(), &cfg(), None).unwrap();
        let f0 = frame(0, 0, CheckpointKind::Full);
        Manifest::append_frame(&dir, &f0).unwrap();
        // Corrupt the f0 line in place, then append an intact line.
        let path = Manifest::path_in(&dir);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("events=100", "events=999");
        std::fs::write(&path, text).unwrap();
        let f1 = frame(0, 1, CheckpointKind::Delta);
        Manifest::append_frame(&dir, &f1).unwrap();
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.frames, vec![f1], "bad line skipped, later line kept");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ensure_refuses_a_different_deployment() {
        let dir = tmp_dir("mismatch");
        Manifest::ensure(&dir, &spec(), &cfg(), None).unwrap();
        // Same spec + config: idempotent.
        Manifest::ensure(&dir, &spec(), &cfg(), None).unwrap();
        // Different family: refused.
        assert!(matches!(
            Manifest::ensure(&dir, &CounterSpec::Exact, &cfg(), None),
            Err(EngineError::ManifestCorrupt { .. })
        ));
        // Different config: refused.
        assert!(matches!(
            Manifest::ensure(&dir, &spec(), &cfg().with_shards(8), None),
            Err(EngineError::ManifestCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_header_byte_is_detected() {
        let dir = tmp_dir("flip");
        Manifest::ensure(&dir, &spec(), &cfg(), None).unwrap();
        let mut text = std::fs::read_to_string(Manifest::path_in(&dir)).unwrap();
        // Flip one character inside the spec words.
        let at = text.find("spec=").unwrap() + 5;
        let mut bytes = text.clone().into_bytes();
        bytes[at] = if bytes[at] == b'0' { b'1' } else { b'0' };
        text = String::from_utf8(bytes).unwrap();
        std::fs::write(Manifest::path_in(&dir), text).unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(EngineError::ManifestCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
