//! # `ac-engine` — the sharded keyed-counter engine, in four layers
//!
//! The paper shrinks *one* counter to `O(log log N + log(1/ε) +
//! log log(1/δ))` bits; the saving only pays off at fleet scale — millions
//! of keys, each with its own approximate counter — and only if the system
//! can admit writes, serve reads, and persist state without freezing the
//! hot path. This crate is that deployment, split into explicit layers:
//!
//! ```text
//!  producers ──► ingest ──► registry/shards ──► snapshot ──► checkpoint
//!               (queue)       (write path)      (serve)      (durable)
//! ```
//!
//! 1. **Ingest** ([`IngestQueue`] / [`IngestProducer`]) — one lock-free
//!    SPSC ring per producer (sized by [`IngestConfig::ring_batches`],
//!    rounded to a power of two), coalescing per-key increments into
//!    batches so producers never block on shard application — and never
//!    contend with each other: a flush is one uncontended slot write plus
//!    two atomic ring words, with parking/unparking on eventcount
//!    doorbells instead of a shared `Condvar`. Batched updates are the
//!    first-class operation (after the amortized-complexity view of
//!    Aden-Ali, Han, Nelson, Yu 2022): a coalesced `(key, delta)` costs
//!    one transition-count-proportional `increment_by`, not `delta` coin
//!    flips. Backpressure is a [`BackpressurePolicy`]: `Block` parks the
//!    producer (lossless, default), `DropNewest` sheds and counts, and
//!    `Fail` makes refusal a value — [`IngestProducer::try_send`] /
//!    [`StoreWriter::try_send`] return [`SendError::Full`] *carrying the
//!    rejected batch*, so silent loss is impossible. Diagnostics surface
//!    through [`EngineStats::with_ingest`]. On the **routed** path
//!    ([`IngestQueue::new_routed`]) producers shard-route each pair at
//!    send time into per-(producer, shard) lanes, so the drain thread is
//!    just a burst coordinator and each persistent shard worker drains
//!    its own lanes with zero dispatch copies
//!    ([`IngestQueue::drain_routed_with`]). The applier loop takes hooks
//!    at batch boundaries ([`IngestQueue::drain_parallel_with`]) or at
//!    burst boundaries on the pooled and routed paths
//!    ([`IngestQueue::drain_pooled_with`] /
//!    [`IngestQueue::drain_routed_with`], one persistent worker per
//!    shard), which is where the background checkpointer rides
//!    ([`IngestQueue::drain_parallel_checkpointed`]).
//! 2. **Write** ([`CounterEngine`]) — slab ownership and batched apply:
//!    key→shard routing (SplitMix64 finalizer + Lemire range reduction),
//!    dense per-shard slabs behind **copy-on-write `Arc`s with epoch
//!    tracking**, per-shard deterministic RNG.
//!    [`CounterEngine::apply_parallel`] fans a batch out one thread per
//!    shard with states bit-identical to the sequential path.
//! 3. **Snapshot/serve** ([`EngineSnapshot`]) — immutable, cheaply
//!    cloneable read replicas. A freeze is `O(shards)` `Arc` clones — no
//!    counter is copied; writers split dirty shards lazily (CoW), so a
//!    freeze's true cost is `O(dirty shards)`, amortized into the writes
//!    that follow. The cross-shard merged aggregate (Remark 2.4) folds on
//!    demand on a reader thread, never on the freeze path.
//! 4. **Checkpoint** ([`checkpoint_snapshot`] / [`checkpoint_delta`] /
//!    [`restore_checkpoint_chain`]) — snapshots serialized through
//!    `ac-bitio`: [`StateCodec`] counter states plus Rice-coded key gaps
//!    behind a versioned header that embeds the [`EngineConfig`] and
//!    parameter fingerprint and refuses mismatched restores. Incremental
//!    **delta frames** serialize only shards dirtied since a parent
//!    checkpoint (parents are identified by chained checksums, so a delta
//!    can never land on the wrong base), and the
//!    [`BackgroundCheckpointer`] writes the base + deltas chain on its
//!    own thread. A restored engine continues the *exact* random stream
//!    (shard RNG states ride along), and a million counters persist at
//!    ~their summed `state_bits`, not a million fixed-width records.
//!
//! ## The `Store` service facade
//!
//! The **[`Store`]** puts all four layers under one roof: one builder, a
//! *runtime*-selected counter family ([`CounterSpec`] /
//! [`CounterFamily`], bit-identical to the monomorphized engine),
//! cloneable writer/reader handles, and crash recovery from an on-disk
//! [`Manifest`]. Start here; the layers stay public as the expert API.
//!
//! ```
//! use ac_engine::{CounterSpec, Store};
//!
//! let store = Store::builder(CounterSpec::NelsonYu { eps: 0.2, delta_log2: 8 })
//!     .with_shards(8)
//!     .start()
//!     .unwrap();
//! let mut writer = store.writer(); // cloneable; own producer id + seqs
//! writer.record(42, 1_000_000);
//! writer.flush().unwrap();
//! let reader = store.reader(); // epoch-pinned, lock-free queries
//! let _ = (reader.estimate(42), reader.merged_estimate().unwrap());
//! store.close().unwrap();
//! // With `.with_durability(dir)`: crash, then `Store::open(dir)`
//! // resumes counters, RNG streams, and the epoch clock bit-exactly
//! // and reports each producer's last applied sequence number.
//! ```
//!
//! ## The expert API, layer by layer
//!
//! ```
//! use ac_core::{ApproxCounter, NelsonYuCounter, NyParams};
//! use ac_engine::{
//!     checkpoint_delta, checkpoint_snapshot, restore_checkpoint_chain, CounterEngine,
//!     EngineConfig, IngestConfig, IngestQueue,
//! };
//! use ac_randkit::Xoshiro256PlusPlus;
//!
//! let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
//! let mut engine = CounterEngine::new(template.clone(), EngineConfig::default());
//!
//! // Ingest: coalesce and batch; drain applies to the write layer.
//! let queue = IngestQueue::new(IngestConfig::default());
//! let mut producer = queue.producer();
//! producer.record(1, 50_000);
//! producer.record(2, 10_000);
//! producer.record(1, 50_000); // coalesces with the first pair
//! producer.send().unwrap(); // or try_send() for the nonblocking path
//! queue.close();
//! queue.drain_into(&mut engine);
//!
//! // Snapshot: an O(shards) freeze; lock-free reads; the merged
//! // aggregate folds on demand, off the freeze path.
//! let snap = engine.snapshot();
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//! assert!((snap.estimate(1).unwrap() - 1.0e5).abs() / 1.0e5 < 0.5);
//! let merged = snap.merged_total(&mut rng).unwrap();
//! assert!((merged.estimate() - 1.1e5).abs() / 1.1e5 < 0.5);
//!
//! // Checkpoint: a full base, then deltas priced at O(dirty data).
//! let base = checkpoint_snapshot(&snap);
//! engine.apply(&[(1, 1_000)]);
//! let delta = checkpoint_delta(&engine.snapshot(), &base.header()).unwrap();
//! let restored =
//!     restore_checkpoint_chain(&template, &[base.bytes(), delta.bytes()]).unwrap();
//! assert_eq!(restored.counter(1).unwrap().state_parts(),
//!            engine.counter(1).unwrap().state_parts());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod applier;
mod checkpoint;
mod checkpointer;
mod error;
mod ingest;
mod legacy;
mod manifest;
mod pool;
mod registry;
mod ring;
mod shard;
mod snapshot;
mod store;

pub use checkpoint::{
    checkpoint_delta, checkpoint_delta_with, checkpoint_snapshot, checkpoint_snapshot_with,
    checkpoint_snapshot_with_workers, checkpoint_snapshot_workers, combined_fingerprint,
    compact_chain, compact_chain_with, compact_chain_with_workers, compact_chain_workers,
    read_header, restore_checkpoint, restore_checkpoint_chain, restore_checkpoint_chain_with,
    restore_checkpoint_chain_with_workers, restore_checkpoint_chain_workers,
    restore_checkpoint_expecting, restore_checkpoint_with, Checkpoint, CheckpointError,
    CheckpointHeader, CheckpointKind, CheckpointStats, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
    CHECKPOINT_VERSION_TIERED,
};
pub use checkpointer::{
    BackgroundCheckpointer, CheckpointRecord, CheckpointerConfig, CheckpointerProbe,
    CheckpointerReport, CheckpointerStats,
};
pub use error::EngineError;
pub use ingest::{
    BackpressurePolicy, Batch, CheckpointCadence, IngestConfig, IngestProducer, IngestQueue,
    IngestStats, ProducerMark, SendError,
};
#[allow(deprecated)]
pub use legacy::{LegacyIngestProducer, LegacyIngestQueue};
pub use manifest::{Manifest, ManifestFrame, ManifestInfo, ManifestTiering, MANIFEST_FILE};
pub use registry::{CounterEngine, EngineConfig, EngineStats, ShardRouter};
pub use snapshot::EngineSnapshot;
pub use store::{
    RecoveryReport, Store, StoreBuilder, StoreOptions, StoreReader, StoreReport, StoreStats,
    StoreWriter,
};

// The serialization contract checkpoints are written against — and the
// runtime family selection the store builds on — re-exported so engine
// users need not depend on `ac-core` directly for them.
pub use ac_core::{CounterFamily, CounterSpec, StateCodec};
