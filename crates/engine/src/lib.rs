//! # `ac-engine` — the sharded keyed-counter engine
//!
//! The paper shrinks *one* counter to `O(log log N + log(1/ε) +
//! log log(1/δ))` bits; the saving only matters at fleet scale — millions
//! of keys, each with its own approximate counter. This crate is that
//! deployment: a keyed registry sharded by key hash, where each shard owns
//! a dense slab of counters plus its own deterministic RNG, driven through
//! a batch-update API whose per-key work rides the counters'
//! transition-count-proportional
//! [`increment_by`](ac_core::ApproxCounter::increment_by) fast paths.
//!
//! * [`CounterEngine::apply`] — route a `&[(key, delta)]` batch to shards
//!   and fast-forward each touched counter; `O(batch + transitions)`,
//!   never `O(Σ delta)`.
//! * [`CounterEngine::apply_parallel`] — the same batch fanned out with
//!   one thread per shard. Because every shard's randomness comes from its
//!   own RNG and the key→shard partition is deterministic, the resulting
//!   state is *identical* to the sequential path, regardless of thread
//!   scheduling.
//! * [`CounterEngine::merged_total`] — cross-shard aggregation that folds
//!   every counter into one via the [`Mergeable`](ac_core::Mergeable)
//!   merge laws (Remark 2.4 / `[CY20 §2.1]`), so a global count never
//!   touches the raw stream.
//!
//! ```
//! use ac_core::{ApproxCounter, NelsonYuCounter, NyParams};
//! use ac_engine::{CounterEngine, EngineConfig};
//! use ac_randkit::Xoshiro256PlusPlus;
//!
//! let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
//! let mut engine = CounterEngine::new(template, EngineConfig::default());
//! engine.apply(&[(1, 50_000), (2, 10_000), (1, 50_000)]);
//!
//! let est = engine.estimate(1).unwrap();
//! assert!((est - 1.0e5).abs() / 1.0e5 < 0.5);
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//! let total = engine.merged_total(&mut rng).unwrap();
//! assert!((total.estimate() - 1.1e5).abs() / 1.1e5 < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod shard;

pub use registry::{CounterEngine, EngineConfig, EngineStats};
