//! # `ac-engine` — the sharded keyed-counter engine, in four layers
//!
//! The paper shrinks *one* counter to `O(log log N + log(1/ε) +
//! log log(1/δ))` bits; the saving only pays off at fleet scale — millions
//! of keys, each with its own approximate counter — and only if the system
//! can admit writes, serve reads, and persist state without freezing the
//! hot path. This crate is that deployment, split into explicit layers:
//!
//! ```text
//!  producers ──► ingest ──► registry/shards ──► snapshot ──► checkpoint
//!               (queue)       (write path)      (serve)      (durable)
//! ```
//!
//! 1. **Ingest** ([`IngestQueue`] / [`IngestProducer`]) — a bounded
//!    multi-producer queue that coalesces per-key increments into batches,
//!    so producers never block on shard application. Batched updates are
//!    the first-class operation (after the amortized-complexity view of
//!    Aden-Ali, Han, Nelson, Yu 2022): a coalesced `(key, delta)` costs
//!    one transition-count-proportional `increment_by`, not `delta` coin
//!    flips. Backpressure is configurable (block or drop-and-count);
//!    diagnostics surface through [`EngineStats::with_ingest`].
//! 2. **Write** ([`CounterEngine`]) — slab ownership and batched apply:
//!    key→shard routing, dense per-shard slabs, per-shard deterministic
//!    RNG. [`CounterEngine::apply_parallel`] fans a batch out one thread
//!    per shard with states bit-identical to the sequential path.
//! 3. **Snapshot/serve** ([`EngineSnapshot`]) — immutable, cheaply
//!    cloneable read replicas: frozen slabs behind `Arc`s plus the
//!    cross-shard merged aggregate, folded once at freeze time through the
//!    [`Mergeable`](ac_core::Mergeable) laws (Remark 2.4). Queries never
//!    contend with writers.
//! 4. **Checkpoint** ([`checkpoint_snapshot`] / [`restore_checkpoint`]) —
//!    snapshots serialized through `ac-bitio`: [`StateCodec`] counter
//!    states plus Rice-coded key gaps behind a versioned header that
//!    embeds the [`EngineConfig`] and parameter fingerprint and refuses
//!    mismatched restores. A restored engine continues the *exact* random
//!    stream (shard RNG states ride along), and a million counters persist
//!    at ~their summed `state_bits`, not a million fixed-width records.
//!
//! ```
//! use ac_core::{ApproxCounter, NelsonYuCounter, NyParams};
//! use ac_engine::{
//!     checkpoint_snapshot, restore_checkpoint, CounterEngine, EngineConfig, IngestConfig,
//!     IngestQueue,
//! };
//! use ac_randkit::Xoshiro256PlusPlus;
//!
//! let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
//! let mut engine = CounterEngine::new(template.clone(), EngineConfig::default());
//!
//! // Ingest: coalesce and batch; drain applies to the write layer.
//! let queue = IngestQueue::new(IngestConfig::default());
//! let mut producer = queue.producer();
//! producer.record(1, 50_000);
//! producer.record(2, 10_000);
//! producer.record(1, 50_000); // coalesces with the first pair
//! producer.flush();
//! queue.close();
//! queue.drain_into(&mut engine);
//!
//! // Snapshot: lock-free reads + the merged cross-shard aggregate.
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//! let snap = engine.snapshot(&mut rng).unwrap();
//! assert!((snap.estimate(1).unwrap() - 1.0e5).abs() / 1.0e5 < 0.5);
//! assert!((snap.merged_total().estimate() - 1.1e5).abs() / 1.1e5 < 0.5);
//!
//! // Checkpoint: durable at ~state_bits, restored bit-identically.
//! let ck = checkpoint_snapshot(&snap);
//! let restored = restore_checkpoint(&template, ck.bytes()).unwrap();
//! assert_eq!(restored.counter(1).unwrap().state_parts(),
//!            engine.counter(1).unwrap().state_parts());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod ingest;
mod registry;
mod shard;
mod snapshot;

pub use checkpoint::{
    checkpoint_snapshot, read_header, restore_checkpoint, restore_checkpoint_expecting, Checkpoint,
    CheckpointError, CheckpointHeader, CheckpointStats, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use ingest::{Batch, IngestConfig, IngestProducer, IngestQueue, IngestStats};
pub use registry::{CounterEngine, EngineConfig, EngineStats};
pub use snapshot::EngineSnapshot;

// The serialization contract checkpoints are written against, re-exported
// so engine users need not depend on `ac-core` directly for it.
pub use ac_core::StateCodec;
