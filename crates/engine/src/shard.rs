//! One shard: a dense slab of counters, a key→slot index, and the shard's
//! own deterministic RNG.

use ac_core::ApproxCounter;
use ac_randkit::{RandomSource, SplitMix64, Xoshiro256PlusPlus};
use std::collections::HashMap;

/// The key→shard partition: one SplitMix64 finalizer round over the
/// salted key — cheap, well-mixed, deterministic. Shared by the write
/// layer ([`crate::CounterEngine`]) and the read replicas
/// ([`crate::EngineSnapshot`]), which must agree bit for bit.
#[inline]
pub(crate) fn route(salt: u64, shards: usize, key: u64) -> usize {
    let mut h = SplitMix64::new(salt ^ key);
    (h.next_u64() % shards as u64) as usize
}

/// A shard owns every counter whose key hashes to it.
///
/// Counters live in a dense slab (`Vec<C>`) so bulk scans (aggregation,
/// memory audits) are cache-friendly; the `HashMap` only resolves
/// key→slot. Each shard draws from its *own* [`Xoshiro256PlusPlus`],
/// seeded from the engine seed and the shard id, which makes every
/// shard's evolution deterministic and independent of how batches are
/// interleaved across shards — the property that lets
/// `apply_parallel` produce states identical to the sequential path.
#[derive(Debug, Clone)]
pub(crate) struct Shard<C> {
    /// key → slab slot. `u32` slots cap a shard at ~4 billion counters,
    /// comfortably beyond any per-shard load the engine targets.
    index: HashMap<u64, u32>,
    slab: Vec<C>,
    rng: Xoshiro256PlusPlus,
    /// Total increments routed into this shard (exact, for diagnostics).
    events: u64,
}

impl<C: ApproxCounter + Clone> Shard<C> {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            index: HashMap::new(),
            slab: Vec::new(),
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            events: 0,
        }
    }

    /// Rebuilds a shard from checkpointed parts: the exact RNG state,
    /// event tally, and `(key, counter)` pairs (order defines slab
    /// layout; estimates and future evolution do not depend on it).
    pub(crate) fn from_restored(
        rng: Xoshiro256PlusPlus,
        events: u64,
        entries: Vec<(u64, C)>,
    ) -> Self {
        let mut index = HashMap::with_capacity(entries.len());
        let mut slab = Vec::with_capacity(entries.len());
        for (key, counter) in entries {
            index.insert(key, slab.len() as u32);
            slab.push(counter);
        }
        Self {
            index,
            slab,
            rng,
            events,
        }
    }

    /// Routes `delta` increments into `key`'s counter, materializing it
    /// from `template` on first touch.
    pub(crate) fn apply_one(&mut self, template: &C, key: u64, delta: u64) {
        let slot = *self.index.entry(key).or_insert_with(|| {
            debug_assert!(self.slab.len() < u32::MAX as usize, "shard slab full");
            self.slab.push(template.clone());
            (self.slab.len() - 1) as u32
        });
        self.slab[slot as usize].increment_by(delta, &mut self.rng);
        self.events += delta;
    }

    pub(crate) fn get(&self, key: u64) -> Option<&C> {
        self.index.get(&key).map(|&slot| &self.slab[slot as usize])
    }

    pub(crate) fn len(&self) -> usize {
        self.slab.len()
    }

    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    /// The shard's RNG, exposed read-only so the checkpoint layer can
    /// persist its exact state (a restored engine continues the same
    /// random stream).
    pub(crate) fn rng(&self) -> &Xoshiro256PlusPlus {
        &self.rng
    }

    pub(crate) fn counters(&self) -> impl Iterator<Item = &C> {
        self.slab.iter()
    }

    /// Iterates `(key, counter)` pairs in unspecified order (the counter
    /// *states* are deterministic; only the iteration order is not).
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u64, &C)> {
        self.index
            .iter()
            .map(|(&key, &slot)| (key, &self.slab[slot as usize]))
    }
}
