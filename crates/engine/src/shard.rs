//! One shard: a dense slab of counters, a key→slot index, and the shard's
//! own deterministic RNG — plus the dirty-epoch word that drives the
//! copy-on-write freeze path and incremental checkpoints.

use ac_core::{ApproxCounter, CoreError, CounterFamily, CounterSpec};
use ac_randkit::{BuildSplitMix64, RandomSource, SplitMix64, Xoshiro256PlusPlus};
use std::collections::HashMap;

/// The key→slot index. Keys reaching a shard are raw user keys, but every
/// lookup mixes them through the deterministic single-round SplitMix64
/// hasher ([`BuildSplitMix64`]) instead of SipHash: the engine's keys are
/// not adversarial strings, so the PRF rounds were pure overhead on the
/// hot `apply_one` lookup, and the process-random SipHash key broke
/// run-to-run reproducibility of map internals.
type KeyIndex = HashMap<u64, u32, BuildSplitMix64>;

/// The key→shard partition: one SplitMix64 finalizer round over the
/// salted key — cheap, well-mixed, deterministic — then Lemire's
/// multiplicative range reduction `(h × shards) >> 64` in place of the
/// integer modulo (one multiply instead of a division; the high bits of
/// `h` pick the shard, which is exactly where the finalizer's avalanche
/// is strongest). Shared by the write layer ([`crate::CounterEngine`])
/// and the read replicas ([`crate::EngineSnapshot`]), which must agree
/// bit for bit.
#[inline]
pub(crate) fn route(salt: u64, shards: usize, key: u64) -> usize {
    let mut h = SplitMix64::new(salt ^ key);
    ((u128::from(h.next_u64()) * shards as u128) >> 64) as usize
}

/// A shard owns every counter whose key hashes to it.
///
/// Counters live in a dense slab (`Vec<C>`) so bulk scans (aggregation,
/// memory audits) are cache-friendly; the `HashMap` only resolves
/// key→slot. Each shard draws from its *own* [`Xoshiro256PlusPlus`],
/// seeded from the engine seed and the shard id, which makes every
/// shard's evolution deterministic and independent of how batches are
/// interleaved across shards — the property that lets
/// `apply_parallel` produce states identical to the sequential path.
///
/// The `dirty_epoch` word records the engine freeze epoch during which
/// the shard was last written. The registry compares it against snapshot
/// and checkpoint epochs to decide what a freeze must copy and what a
/// delta checkpoint must serialize; the shard itself only stores it.
#[derive(Debug, Clone)]
pub(crate) struct Shard<C> {
    /// key → slab slot. `u32` slots cap a shard at ~4 billion counters,
    /// comfortably beyond any per-shard load the engine targets.
    index: KeyIndex,
    slab: Vec<C>,
    /// Per-slot accuracy-tier tags, parallel to `slab`. **Lazy:** empty
    /// means every slot sits in tier 0 (the default), so untiered engines
    /// pay zero bytes and zero branches for the tag machinery. The vec
    /// materializes on the first non-default assignment.
    tiers: Vec<u8>,
    rng: Xoshiro256PlusPlus,
    /// Total increments routed into this shard (exact, for diagnostics).
    events: u64,
    /// Sum of live counter register bits, maintained incrementally on
    /// every write/migration so the budget gauge is `O(shards)` to read,
    /// never an `O(keys)` scan.
    state_bits: u64,
    /// Engine freeze epoch of the last write into this shard (0 = never
    /// written). Maintained by the registry via [`Shard::touch`].
    dirty_epoch: u64,
}

impl<C: ApproxCounter + Clone> Shard<C> {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            index: KeyIndex::default(),
            slab: Vec::new(),
            tiers: Vec::new(),
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            events: 0,
            state_bits: 0,
            dirty_epoch: 0,
        }
    }

    /// Rebuilds a shard from checkpointed parts: the exact RNG state,
    /// event tally, `(key, counter)` pairs (order defines slab layout;
    /// estimates and future evolution do not depend on it), and the
    /// per-key tier tags — either parallel to `entries` or empty for
    /// "every key in tier 0" (the v2-checkpoint case). `dirty_epoch` is
    /// the restore-time epoch — conservatively "dirty as of the
    /// checkpoint it came from".
    pub(crate) fn from_restored(
        rng: Xoshiro256PlusPlus,
        events: u64,
        entries: Vec<(u64, C)>,
        tiers: Vec<u8>,
        dirty_epoch: u64,
    ) -> Self {
        debug_assert!(
            tiers.is_empty() || tiers.len() == entries.len(),
            "tier tags must be absent or parallel to the slab"
        );
        let mut index = KeyIndex::with_capacity_and_hasher(entries.len(), BuildSplitMix64);
        let mut slab = Vec::with_capacity(entries.len());
        let mut state_bits = 0u64;
        for (key, counter) in entries {
            index.insert(key, slab.len() as u32);
            state_bits += ac_bitio::StateBits::state_bits(&counter);
            slab.push(counter);
        }
        // Collapse an all-default tag vector back to the lazy form so a
        // restored shard is byte-identical to a never-tiered one.
        let tiers = if tiers.iter().all(|&t| t == 0) {
            Vec::new()
        } else {
            tiers
        };
        Self {
            index,
            slab,
            tiers,
            rng,
            events,
            state_bits,
            dirty_epoch,
        }
    }

    /// Routes `delta` increments into `key`'s counter, materializing it
    /// from `template` on first touch.
    pub(crate) fn apply_one(&mut self, template: &C, key: u64, delta: u64) {
        let slot = if let Some(&slot) = self.index.get(&key) {
            slot
        } else {
            debug_assert!(self.slab.len() < u32::MAX as usize, "shard slab full");
            let slot = self.slab.len() as u32;
            let fresh = template.clone();
            self.state_bits += ac_bitio::StateBits::state_bits(&fresh);
            self.slab.push(fresh);
            if !self.tiers.is_empty() {
                self.tiers.push(0);
            }
            self.index.insert(key, slot);
            slot
        };
        let counter = &mut self.slab[slot as usize];
        let before = ac_bitio::StateBits::state_bits(counter);
        counter.increment_by(delta, &mut self.rng);
        let after = ac_bitio::StateBits::state_bits(counter);
        self.state_bits = self.state_bits - before + after;
        self.events += delta;
    }

    /// Applies a routed bucket of pairs in order — the pooled applier's
    /// per-worker inner loop.
    pub(crate) fn apply_pairs(&mut self, template: &C, pairs: &[(u64, u64)]) {
        for &(key, delta) in pairs {
            self.apply_one(template, key, delta);
        }
    }

    /// Applies a routed bucket with the key-run fold: sorts by key, sums
    /// each run's deltas, and applies one `increment_by` per run —
    /// amortizing counter state transitions (and RNG draws) across every
    /// repeat of a hot key in the burst. Returns the pairs elided
    /// (`pairs.len() - runs`). Distributionally identical to
    /// [`Shard::apply_pairs`] but consumes the RNG stream differently,
    /// so callers needing bit-exact replay must not fold.
    pub(crate) fn apply_folded(&mut self, template: &C, mut pairs: Vec<(u64, u64)>) -> u64 {
        let before = pairs.len() as u64;
        pairs.sort_unstable_by_key(|&(key, _)| key);
        let mut runs = 0u64;
        let mut i = 0;
        while i < pairs.len() {
            let key = pairs[i].0;
            let mut delta = pairs[i].1;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == key {
                delta = delta.saturating_add(pairs[j].1);
                j += 1;
            }
            self.apply_one(template, key, delta);
            runs += 1;
            i = j;
        }
        before - runs
    }

    /// Marks the shard dirty as of freeze epoch `epoch`.
    #[inline]
    pub(crate) fn touch(&mut self, epoch: u64) {
        self.dirty_epoch = epoch;
    }

    /// The freeze epoch of the last write (0 = never written).
    #[inline]
    pub(crate) fn dirty_epoch(&self) -> u64 {
        self.dirty_epoch
    }

    pub(crate) fn get(&self, key: u64) -> Option<&C> {
        self.index.get(&key).map(|&slot| &self.slab[slot as usize])
    }

    pub(crate) fn len(&self) -> usize {
        self.slab.len()
    }

    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    /// The shard's RNG, exposed read-only so the checkpoint layer can
    /// persist its exact state (a restored engine continues the same
    /// random stream).
    pub(crate) fn rng(&self) -> &Xoshiro256PlusPlus {
        &self.rng
    }

    pub(crate) fn counters(&self) -> impl Iterator<Item = &C> {
        self.slab.iter()
    }

    /// Iterates `(key, counter)` pairs in unspecified order (the counter
    /// *states* are deterministic; only the iteration order is not).
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u64, &C)> {
        self.index
            .iter()
            .map(|(&key, &slot)| (key, &self.slab[slot as usize]))
    }

    /// Sum of live counter register bits in this shard (maintained
    /// incrementally; `O(1)` to read).
    pub(crate) fn state_bits(&self) -> u64 {
        self.state_bits
    }

    /// The accuracy tier of slab slot `slot`.
    #[inline]
    fn tier_of_slot(&self, slot: usize) -> u8 {
        self.tiers.get(slot).copied().unwrap_or(0)
    }

    /// The accuracy tier `key` currently sits in, or `None` for an
    /// untracked key.
    pub(crate) fn tier_of(&self, key: u64) -> Option<u8> {
        self.index
            .get(&key)
            .map(|&slot| self.tier_of_slot(slot as usize))
    }

    /// Iterates `(key, counter, tier)` triples in unspecified order — the
    /// tiered checkpoint writer's view.
    pub(crate) fn entries_tagged(&self) -> impl Iterator<Item = (u64, &C, u8)> {
        self.index.iter().map(|(&key, &slot)| {
            (
                key,
                &self.slab[slot as usize],
                self.tier_of_slot(slot as usize),
            )
        })
    }

    /// Accumulates this shard's per-tier key counts into `counts`,
    /// growing it as needed (`counts[t]` += keys in tier `t`).
    pub(crate) fn tier_counts_into(&self, counts: &mut Vec<u64>) {
        if counts.is_empty() {
            counts.push(0);
        }
        if self.tiers.is_empty() {
            counts[0] += self.slab.len() as u64;
            return;
        }
        for &t in &self.tiers {
            let t = usize::from(t);
            if t >= counts.len() {
                counts.resize(t + 1, 0);
            }
            counts[t] += 1;
        }
    }

    /// Tags slab slot `slot` with `tier`, materializing the lazy tag
    /// vector on the first non-default assignment.
    fn set_tier_slot(&mut self, slot: usize, tier: u8) {
        if self.tiers.is_empty() {
            if tier == 0 {
                return;
            }
            self.tiers = vec![0; self.slab.len()];
        }
        self.tiers[slot] = tier;
    }
}

impl Shard<CounterFamily> {
    /// Migrates `key`'s counter to `spec` via the estimate-preserving
    /// [`CounterFamily::migrate_to`] and tags it `tier`, keeping the
    /// shard's incremental `state_bits` exact. Returns `Ok(false)` for a
    /// key the shard does not track (it may have been routed here by a
    /// stale plan).
    ///
    /// The migration construction is deterministic and consumes no
    /// randomness, so the shard's RNG stream — which checkpoints persist
    /// bit-exactly — is unchanged by any number of migrations.
    pub(crate) fn migrate_key(
        &mut self,
        key: u64,
        spec: &CounterSpec,
        tier: u8,
    ) -> Result<bool, CoreError> {
        let Some(&slot) = self.index.get(&key) else {
            return Ok(false);
        };
        let slot = slot as usize;
        let migrated = self.slab[slot].migrate_to(spec, &mut self.rng)?;
        let before = ac_bitio::StateBits::state_bits(&self.slab[slot]);
        let after = ac_bitio::StateBits::state_bits(&migrated);
        self.state_bits = self.state_bits - before + after;
        self.slab[slot] = migrated;
        self.set_tier_slot(slot, tier);
        Ok(true)
    }
}
