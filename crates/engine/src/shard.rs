//! One shard: a dense slab of counters, a key→slot index, and the shard's
//! own deterministic RNG.

use ac_core::ApproxCounter;
use ac_randkit::Xoshiro256PlusPlus;
use std::collections::HashMap;

/// A shard owns every counter whose key hashes to it.
///
/// Counters live in a dense slab (`Vec<C>`) so bulk scans (aggregation,
/// memory audits) are cache-friendly; the `HashMap` only resolves
/// key→slot. Each shard draws from its *own* [`Xoshiro256PlusPlus`],
/// seeded from the engine seed and the shard id, which makes every
/// shard's evolution deterministic and independent of how batches are
/// interleaved across shards — the property that lets
/// `apply_parallel` produce states identical to the sequential path.
#[derive(Debug, Clone)]
pub(crate) struct Shard<C> {
    /// key → slab slot. `u32` slots cap a shard at ~4 billion counters,
    /// comfortably beyond any per-shard load the engine targets.
    index: HashMap<u64, u32>,
    slab: Vec<C>,
    rng: Xoshiro256PlusPlus,
    /// Total increments routed into this shard (exact, for diagnostics).
    events: u64,
}

impl<C: ApproxCounter + Clone> Shard<C> {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            index: HashMap::new(),
            slab: Vec::new(),
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            events: 0,
        }
    }

    /// Routes `delta` increments into `key`'s counter, materializing it
    /// from `template` on first touch.
    pub(crate) fn apply_one(&mut self, template: &C, key: u64, delta: u64) {
        let slot = *self.index.entry(key).or_insert_with(|| {
            debug_assert!(self.slab.len() < u32::MAX as usize, "shard slab full");
            self.slab.push(template.clone());
            (self.slab.len() - 1) as u32
        });
        self.slab[slot as usize].increment_by(delta, &mut self.rng);
        self.events += delta;
    }

    pub(crate) fn get(&self, key: u64) -> Option<&C> {
        self.index.get(&key).map(|&slot| &self.slab[slot as usize])
    }

    pub(crate) fn len(&self) -> usize {
        self.slab.len()
    }

    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    pub(crate) fn counters(&self) -> impl Iterator<Item = &C> {
        self.slab.iter()
    }

    /// Iterates `(key, counter)` pairs in unspecified order (the counter
    /// *states* are deterministic; only the iteration order is not).
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u64, &C)> {
        self.index
            .iter()
            .map(|(&key, &slot)| (key, &self.slab[slot as usize]))
    }
}
