//! Service-facade guarantees, proven end to end:
//!
//! * **runtime ≡ compile-time** — a `CounterEngine<CounterFamily>` built
//!   from a [`CounterSpec`] is bit-identical to the monomorphized
//!   `CounterEngine<C>` fed the same stream, for all five families:
//!   same states, same estimates, same checkpoint *bytes*, and each
//!   side restores the other's checkpoints (property tests);
//! * **the `Store` applies what a bare engine applies** — a single
//!   writer driving the service reproduces direct `apply` bit for bit;
//! * **crash recovery** — `Store::open` resumes an intact chain
//!   bit-exactly (counters, shard RNG streams, epoch clock), falls back
//!   past a truncated tail delta to the best intact prefix, reports the
//!   per-producer replay cursor, and returns typed errors for empty,
//!   corrupt, or missing manifests and unrestorable directories.

use ac_bitio::{BitVec, BitWriter};
use ac_core::{
    ApproxCounter, CounterFamily, CounterSpec, CsurosCounter, ExactCounter, MorrisCounter,
    MorrisPlus, NelsonYuCounter, NyParams, StateCodec,
};
use ac_engine::{
    checkpoint_snapshot, compact_chain, restore_checkpoint, restore_checkpoint_chain,
    CheckpointKind, CounterEngine, EngineConfig, EngineError, IngestConfig, Manifest, Store,
    StoreOptions,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn encoded<C: StateCodec>(c: &C) -> BitVec {
    let mut v = BitVec::new();
    c.encode_state(&mut BitWriter::new(&mut v));
    v
}

/// The tentpole equivalence: spec-built enum dispatch vs monomorphized
/// generic engine — states, estimates, checkpoint bytes, cross-restores.
fn assert_runtime_matches_generic<C: StateCodec + Clone + Send + Sync + 'static>(
    concrete: &C,
    spec: CounterSpec,
    shards: usize,
    seed: u64,
    events: &[(u64, u64)],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let config = EngineConfig::new().with_shards(shards).with_seed(seed);
    let family = spec.build().expect("valid spec");
    prop_assert_eq!(
        family.params_fingerprint(),
        concrete.params_fingerprint(),
        "spec must build a schedule-compatible counter"
    );

    let mut generic = CounterEngine::new(concrete.clone(), config);
    let mut runtime = CounterEngine::new(family.clone(), config);
    generic.apply(events);
    runtime.apply(events);

    prop_assert_eq!(runtime.len(), generic.len());
    prop_assert_eq!(runtime.total_events(), generic.total_events());
    for (key, counter) in generic.iter() {
        let twin = runtime.counter(key);
        prop_assert!(twin.is_some(), "key {} missing from runtime engine", key);
        let twin = twin.expect("checked");
        prop_assert_eq!(twin.estimate(), counter.estimate(), "estimate key {}", key);
        prop_assert_eq!(
            encoded(twin),
            encoded(counter),
            "state bits for key {}",
            key
        );
    }

    // Checkpoint bytes are identical — the durable format cannot tell
    // enum dispatch from monomorphization.
    let ck_generic = checkpoint_snapshot(&generic.snapshot());
    let ck_runtime = checkpoint_snapshot(&runtime.snapshot());
    prop_assert_eq!(ck_runtime.bytes(), ck_generic.bytes());

    // And each side restores the other's checkpoint.
    let cross = restore_checkpoint(&family, ck_generic.bytes()).expect("cross-restore");
    prop_assert_eq!(cross.total_events(), generic.total_events());
    let back = restore_checkpoint(concrete, ck_runtime.bytes()).expect("cross-restore");
    prop_assert_eq!(back.total_events(), runtime.total_events());
    Ok(())
}

proptest! {
    #[test]
    fn runtime_family_matches_generic_engine_for_all_families(
        events in prop::collection::vec((0u64..300, 1u64..2_000), 1..80),
        shards in 1usize..7,
        seed in 0u64..100_000,
    ) {
        assert_runtime_matches_generic(
            &ExactCounter::new(), CounterSpec::Exact, shards, seed, &events)?;
        assert_runtime_matches_generic(
            &MorrisCounter::new(0.25).unwrap(),
            CounterSpec::Morris { a: 0.25 }, shards, seed, &events)?;
        assert_runtime_matches_generic(
            &MorrisPlus::new(0.2, 8).unwrap(),
            CounterSpec::MorrisPlus { eps: 0.2, delta_log2: 8 }, shards, seed, &events)?;
        assert_runtime_matches_generic(
            &NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap()),
            CounterSpec::NelsonYu { eps: 0.2, delta_log2: 8 }, shards, seed, &events)?;
        assert_runtime_matches_generic(
            &CsurosCounter::new(8).unwrap(),
            CounterSpec::Csuros { mantissa_bits: 8 }, shards, seed, &events)?;
    }

    #[test]
    fn store_reproduces_direct_apply_bit_for_bit(
        rounds in prop::collection::vec(
            prop::collection::vec((0u64..120, 1u64..500), 1..12), 1..6),
        shards in 1usize..5,
        seed in 0u64..10_000,
    ) {
        // One writer, one flush per round: the store's applied stream is
        // exactly `rounds` (each round one batch, keys deduplicated to
        // sidestep coalescing-order bookkeeping).
        let spec = CounterSpec::NelsonYu { eps: 0.2, delta_log2: 8 };
        let config = EngineConfig::new().with_shards(shards).with_seed(seed);
        let mut reference = CounterEngine::new(spec.build().unwrap(), config);

        let store = Store::builder(spec)
            .with_shards(shards)
            .with_seed(seed)
            .with_ingest(IngestConfig::new().with_batch_pairs(1_000))
            .start()
            .unwrap();
        let mut writer = store.writer();
        for round in &rounds {
            let mut batch: Vec<(u64, u64)> = Vec::new();
            for &(key, delta) in round {
                if let Some(pair) = batch.iter_mut().find(|p| p.0 == key) {
                    pair.1 += delta;
                } else {
                    batch.push((key, delta));
                }
            }
            for &(key, delta) in &batch {
                writer.record(key, delta);
            }
            prop_assert!(writer.flush().is_ok());
            reference.apply(&batch);
        }
        let mut reader = store.reader();
        let report = store.close().unwrap();
        prop_assert_eq!(report.stats.events, reference.total_events());

        reader.refresh();
        prop_assert_eq!(reader.total_events(), reference.total_events());
        prop_assert_eq!(reader.len(), reference.len());
        for (key, counter) in reference.iter() {
            let twin = reader.counter(key);
            prop_assert!(twin.is_some(), "key {} missing from store", key);
            prop_assert_eq!(
                encoded(twin.expect("checked")),
                encoded(counter),
                "state for key {}",
                key
            );
        }
    }
}

// ---------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ac-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CounterSpec {
    CounterSpec::NelsonYu {
        eps: 0.2,
        delta_log2: 8,
    }
}

/// A durable store fed a deterministic multi-batch stream, shut down by
/// `kill` (no close-time frame) so the directory looks crash-like.
fn write_crashy_store(dir: &Path) -> u64 {
    let store = Store::builder(spec())
        .with_shards(4)
        .with_seed(77)
        .with_ingest(IngestConfig::new().with_batch_pairs(64))
        .with_snapshot_every_events(1_000)
        .with_durability(dir)
        .with_checkpoint_every_events(400)
        .with_max_deltas_per_base(10)
        .start()
        .unwrap();
    let mut w = store.writer();
    let mut total = 0u64;
    for round in 0..8u64 {
        for key in 0..60u64 {
            let delta = 1 + (key + round) % 9;
            w.record(key + 100 * (round % 3), delta);
            total += delta;
        }
        w.flush().unwrap();
    }
    store.kill();
    total
}

fn family_template() -> CounterFamily {
    spec().build().unwrap()
}

/// Reads the chain of the newest base according to the manifest.
fn newest_chain_files(dir: &Path) -> Vec<(PathBuf, CheckpointKind)> {
    let m = Manifest::load(dir).unwrap();
    let base = m
        .frames
        .iter()
        .rposition(|f| f.kind == CheckpointKind::Full)
        .expect("at least one full frame");
    m.frames[base..]
        .iter()
        .map(|f| (dir.join(&f.file), f.kind))
        .collect()
}

fn restore_clean(dir: &Path, drop_tail: usize) -> CounterEngine<CounterFamily> {
    let files = newest_chain_files(dir);
    let keep = files.len() - drop_tail;
    let segments: Vec<Vec<u8>> = files[..keep]
        .iter()
        .map(|(p, _)| std::fs::read(p).unwrap())
        .collect();
    let refs: Vec<&[u8]> = segments.iter().map(Vec::as_slice).collect();
    restore_checkpoint_chain(&family_template(), &refs).unwrap()
}

fn assert_store_matches_engine(store: &Store, engine: &CounterEngine<CounterFamily>) {
    let reader = store.reader();
    assert_eq!(reader.total_events(), engine.total_events());
    assert_eq!(reader.len(), engine.len());
    for (key, counter) in engine.iter() {
        let twin = reader.counter(key).expect("key present");
        assert_eq!(encoded(twin), encoded(counter), "state for key {key}");
    }
}

#[test]
fn open_resumes_an_intact_chain_bit_exactly() {
    let dir = tmp_dir("intact");
    let total = write_crashy_store(&dir);
    let frames = Manifest::load(&dir).unwrap().frames;
    assert!(frames.len() >= 2, "cadence must have cut several frames");
    assert_eq!(frames[0].kind, CheckpointKind::Full);
    assert!(frames.iter().any(|f| f.kind == CheckpointKind::Delta));

    // Clean restore of the newest chain == what Store::open serves.
    let clean = restore_clean(&dir, 0);
    let store = Store::open(&dir).unwrap();
    let recovery = store.recovery().expect("opened from disk").clone();
    assert_eq!(recovery.frames_used, newest_chain_files(&dir).len());
    assert_eq!(recovery.frames_skipped, 0, "intact chain, nothing lost");
    assert_eq!(recovery.events, clean.total_events());
    assert!(recovery.events <= total, "a kill may lose the queue tail");
    assert_eq!(recovery.session, 1, "second writer session");
    // The replay cursor: one producer, applied == enqueued at the tip.
    assert_eq!(recovery.last_applied.len(), 1);
    assert!(recovery.last_applied[0].applied_seq > 0);
    assert_store_matches_engine(&store, &clean);

    // Epoch clock resumed: the store's first publish freezes at the
    // epoch the clean restore's clock resumes at.
    let mut clean = clean;
    assert_eq!(store.reader().epoch(), clean.snapshot().epoch());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_falls_back_past_a_truncated_tail_delta() {
    let dir = tmp_dir("truncated");
    write_crashy_store(&dir);
    let files = newest_chain_files(&dir);
    assert!(files.len() >= 2, "need a delta tail to truncate");
    let (tail, kind) = files.last().unwrap();
    assert_eq!(*kind, CheckpointKind::Delta);
    // Tear the newest delta in half — the torn-write crash.
    let bytes = std::fs::read(tail).unwrap();
    std::fs::write(tail, &bytes[..bytes.len() / 2]).unwrap();

    let clean_prefix = restore_clean(&dir, 1);
    let store = Store::open(&dir).unwrap();
    let recovery = store.recovery().expect("opened from disk").clone();
    assert_eq!(recovery.frames_skipped, 1, "the torn tail was dropped");
    assert_eq!(recovery.events, clean_prefix.total_events());
    assert_store_matches_engine(&store, &clean_prefix);

    // RNG streams and epoch clock resumed bit-exactly: the same
    // follow-up stream evolves the reopened store and the clean restore
    // to identical states.
    let mut clean_prefix = clean_prefix;
    assert_eq!(store.reader().epoch(), clean_prefix.snapshot().epoch());
    let follow_up: Vec<(u64, u64)> = (0..150u64).map(|k| (k * 3, 5 + k % 11)).collect();
    let mut w = store.writer();
    for &(key, delta) in &follow_up {
        w.record(key, delta);
    }
    w.flush().unwrap();
    clean_prefix.apply(&follow_up);
    let mut reader = store.reader();
    let _ = store.close().unwrap();
    reader.refresh();
    assert_eq!(reader.total_events(), clean_prefix.total_events());
    for &(key, _) in &follow_up {
        assert_eq!(
            reader.counter(key).map(encoded),
            clean_prefix.counter(key).map(encoded),
            "post-recovery stream for key {key}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_store_checkpoints_under_a_new_session() {
    let dir = tmp_dir("sessions");
    write_crashy_store(&dir);
    let frames_before = Manifest::load(&dir).unwrap().frames.len();

    // Reopen, write a little, close cleanly: the close-time frame lands
    // in the manifest under session 1 and the directory reopens again.
    let store = Store::open(&dir).unwrap();
    let mut w = store.writer();
    for key in 0..40u64 {
        w.record(key, 3);
    }
    w.flush().unwrap();
    let reopened_events = {
        let mut r = store.reader();
        let _ = store.close().unwrap();
        r.refresh();
        r.total_events()
    };

    let m = Manifest::load(&dir).unwrap();
    assert!(m.frames.len() > frames_before, "new session wrote frames");
    let tail = m.frames.last().unwrap();
    assert_eq!(tail.session, 1);
    assert_eq!(tail.kind, CheckpointKind::Full, "fresh session starts full");
    assert_eq!(tail.events, reopened_events);

    let again = Store::open(&dir).unwrap();
    let recovery = again.recovery().unwrap().clone();
    assert_eq!(recovery.events, reopened_events, "nothing lost on close");
    assert_eq!(recovery.session, 2);
    again.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_corrupt_manifests_are_typed_errors() {
    // Missing directory / manifest.
    let dir = tmp_dir("manifest-errors");
    assert!(matches!(
        Store::open(&dir),
        Err(EngineError::ManifestMissing { .. })
    ));

    // Empty manifest file.
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("store.manifest"), "").unwrap();
    assert!(matches!(
        Store::open(&dir),
        Err(EngineError::ManifestCorrupt { .. })
    ));

    // Garbage manifest.
    std::fs::write(dir.join("store.manifest"), "definitely not a manifest\n").unwrap();
    assert!(matches!(
        Store::open(&dir),
        Err(EngineError::ManifestCorrupt { .. })
    ));

    // A flipped byte inside an otherwise valid header.
    std::fs::remove_dir_all(&dir).unwrap();
    write_crashy_store(&dir);
    let path = dir.join("store.manifest");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut bytes = text.into_bytes();
    let at = 15; // inside the header line
    bytes[at] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Store::open(&dir),
        Err(EngineError::ManifestCorrupt { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_with_no_restorable_frames_is_a_typed_error() {
    let dir = tmp_dir("unrestorable");
    write_crashy_store(&dir);
    // Destroy every frame file; the manifest still lists them.
    for frame in &Manifest::load(&dir).unwrap().frames {
        std::fs::remove_file(dir.join(&frame.file)).unwrap();
    }
    assert!(matches!(
        Store::open(&dir),
        Err(EngineError::NoRestorableChain { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_only_manifest_resumes_an_empty_store() {
    // A store that crashed before its first checkpoint: the manifest has
    // a header but no frames. Reopening yields an empty service of the
    // recorded family and config.
    let dir = tmp_dir("header-only");
    let store = Store::builder(spec())
        .with_shards(4)
        .with_seed(5)
        .with_durability(&dir)
        .start()
        .unwrap();
    store.kill(); // no events ever applied, no frame cut

    let store = Store::open(&dir).unwrap();
    let recovery = store.recovery().unwrap();
    assert_eq!(recovery.frames_in_manifest, 0);
    assert_eq!(recovery.events, 0);
    assert_eq!(
        store.config(),
        EngineConfig::new().with_shards(4).with_seed(5)
    );
    assert_eq!(store.spec(), spec());
    assert!(store.reader().is_empty());
    store.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_live_store_on_a_directory_is_refused() {
    let dir = tmp_dir("busy");
    let store = Store::builder(spec())
        .with_durability(&dir)
        .start()
        .unwrap();
    // Both a fresh builder and an open are refused while the first
    // store lives.
    assert!(matches!(
        Store::builder(spec()).with_durability(&dir).start(),
        Err(EngineError::StoreBusy { .. })
    ));
    assert!(matches!(
        Store::open(&dir),
        Err(EngineError::StoreBusy { .. })
    ));
    let _ = store.close().unwrap();

    // The lock is released on close; a stale lock from a dead process
    // (simulated with an absurd pid) is cleared automatically.
    std::fs::write(dir.join("store.lock"), "4000000000").unwrap();
    let again = Store::open(&dir).unwrap();
    again.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn writer_flush_reports_events_lost_to_silent_auto_flushes() {
    let dir = tmp_dir("refused");
    let store = Store::builder(spec())
        .with_durability(&dir)
        .with_ingest(IngestConfig::new().with_batch_pairs(1))
        .start()
        .unwrap();
    let mut writer = store.writer();
    writer.record(1, 5);
    writer.flush().unwrap();
    store.kill();

    // The store is gone (queue closed): record()'s auto-flush drops the
    // batch silently, but the next flush must surface the loss.
    writer.record(2, 7); // batch_pairs=1 → auto-flush → refused
    match writer.flush() {
        Err(EngineError::BatchRefused { dropped_events }) => assert_eq!(dropped_events, 7),
        other => panic!("expected BatchRefused, got {other:?}"),
    }
    // Reported once, not forever.
    writer.flush().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_compacts_its_chain_and_reopens_bit_exactly() {
    let dir = tmp_dir("compacted");
    let config = EngineConfig::new().with_shards(4).with_seed(77);
    let mut reference = CounterEngine::new(family_template(), config);
    // A huge rebase budget makes the compactor the only thing bounding
    // the chain: without it the manifest would grow one delta per cut.
    let store = Store::builder(spec())
        .with_shards(4)
        .with_seed(77)
        .with_ingest(IngestConfig::new().with_batch_pairs(64))
        .with_snapshot_every_events(300)
        .with_durability(&dir)
        .with_checkpoint_every_events(250)
        .with_max_deltas_per_base(100)
        .with_max_chain_len(3)
        .start()
        .unwrap();
    let mut w = store.writer();
    for round in 0..20u64 {
        let batch: Vec<(u64, u64)> = (0..60u64)
            .map(|k| (k + 100 * (round % 3), 1 + (k + round) % 9))
            .collect();
        for &(key, delta) in &batch {
            w.record(key, delta);
        }
        w.flush().unwrap();
        reference.apply(&batch);
    }
    let report = store.close().unwrap();
    assert_eq!(report.stats.events, reference.total_events());

    // The manifest was rewritten in place: it now opens on a compacted
    // base and lists fewer frames than the cadence cut.
    let m = Manifest::load(&dir).unwrap();
    assert_eq!(m.frames[0].kind, CheckpointKind::Full);
    assert!(
        m.frames[0].file.contains("-c"),
        "chain opens on a compactor fold: {}",
        m.frames[0].file
    );

    // Reopening walks the compacted chain — the fold plus the deltas cut
    // while it ran — back to the exact close-time state.
    let store = Store::open(&dir).unwrap();
    let recovery = store.recovery().expect("opened from disk").clone();
    assert_eq!(recovery.frames_skipped, 0, "compacted chain is intact");
    assert_eq!(
        recovery.events,
        reference.total_events(),
        "close lost nothing"
    );
    assert_eq!(recovery.last_applied.len(), 1);
    let resumed = store.writer().resume_from(&recovery);
    assert_eq!(
        resumed, recovery.last_applied[0],
        "cursor for this producer"
    );
    assert!(resumed.applied_seq > 0);
    assert_store_matches_engine(&store, &reference);
    store.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orphan_compacted_base_from_a_crashed_compactor_is_ignored() {
    let dir = tmp_dir("orphan-cbase");
    write_crashy_store(&dir);

    // Simulate a compactor that died between writing its fresh base and
    // swapping the manifest: the fold exists on disk, but the manifest
    // still lists the old chain — which must stay the recovery source.
    let files = newest_chain_files(&dir);
    assert!(files.len() >= 2, "need a chain worth folding");
    let segments: Vec<Vec<u8>> = files
        .iter()
        .map(|(p, _)| std::fs::read(p).unwrap())
        .collect();
    let refs: Vec<&[u8]> = segments.iter().map(Vec::as_slice).collect();
    let orphan = compact_chain(&family_template(), &refs).unwrap();
    std::fs::write(dir.join("ckpt-000-c99999-full.bin"), orphan.bytes()).unwrap();

    let clean = restore_clean(&dir, 0);
    let store = Store::open(&dir).unwrap();
    let recovery = store.recovery().expect("opened from disk").clone();
    assert_eq!(
        recovery.frames_used,
        files.len(),
        "recovery walked the manifest's chain, not the orphan"
    );
    assert_eq!(recovery.frames_skipped, 0);
    assert_eq!(recovery.events, clean.total_events());
    assert_store_matches_engine(&store, &clean);
    store.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_with_honors_runtime_options() {
    let dir = tmp_dir("open-options");
    write_crashy_store(&dir);
    let store = Store::open_with(
        &dir,
        StoreOptions::new()
            .with_ingest(IngestConfig::new().with_batch_pairs(8))
            .with_snapshot_every_events(16)
            .with_checkpoint_every_events(64)
            .with_max_deltas_per_base(2),
    )
    .unwrap();
    let before = store.reader().total_events();
    let mut w = store.writer();
    for key in 0..32u64 {
        w.record(key, 4);
    }
    w.flush().unwrap();
    let mut r = store.reader();
    let _ = store.close().unwrap();
    r.refresh();
    assert_eq!(r.total_events(), before + 128);
    let _ = std::fs::remove_dir_all(&dir);
}
