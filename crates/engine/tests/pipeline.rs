//! Property tests for the engine pipeline: `restore(checkpoint(engine))`
//! preserves every key's estimate, `state_bits`, and the RNG-independent
//! metadata (key count, exact event totals, config) across all five
//! counter families; the copy-on-write freeze is bit-identical to the
//! legacy deep-clone freeze under arbitrary interleavings of writes and
//! freezes; base + delta chains fold back to exactly the engine a full
//! checkpoint restores — RNG streams included; and corrupted checkpoints,
//! broken chains, and mismatched restores are rejected with typed errors,
//! never a panic or a silently wrong engine.

use ac_bitio::{BitVec, BitWriter};
use ac_core::{
    CsurosCounter, ExactCounter, MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams, StateCodec,
};
use ac_engine::{
    checkpoint_delta, checkpoint_snapshot, restore_checkpoint, restore_checkpoint_chain,
    restore_checkpoint_expecting, Checkpoint, CheckpointError, CounterEngine, EngineConfig,
};
use proptest::prelude::*;

/// Builds an engine over the given workload and checkpoints it.
fn engine_and_checkpoint<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    shards: usize,
    seed: u64,
    events: &[(u64, u64)],
) -> (CounterEngine<C>, Checkpoint) {
    let mut engine = CounterEngine::new(
        template.clone(),
        EngineConfig::new().with_shards(shards).with_seed(seed),
    );
    engine.apply(events);
    let ck = checkpoint_snapshot(&engine.snapshot());
    (engine, ck)
}

/// The family-generic "bit-identical persistent state" oracle.
fn encoded<C: StateCodec>(c: &C) -> BitVec {
    let mut v = BitVec::new();
    c.encode_state(&mut BitWriter::new(&mut v));
    v
}

/// The family-generic fidelity check.
fn assert_restores_exactly<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    shards: usize,
    seed: u64,
    events: &[(u64, u64)],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let (engine, ck) = engine_and_checkpoint(template, shards, seed, events);
    let restored = restore_checkpoint(template, ck.bytes()).expect("valid checkpoint");

    prop_assert_eq!(restored.len(), engine.len());
    prop_assert_eq!(restored.total_events(), engine.total_events());
    prop_assert_eq!(restored.config(), engine.config());
    prop_assert_eq!(
        restored.stats().state_bits_total,
        ck.stats().counter_state_bits
    );
    for (key, counter) in engine.iter() {
        let back = restored.counter(key);
        prop_assert!(back.is_some(), "key {} lost", key);
        let back = back.expect("checked");
        prop_assert_eq!(
            back.estimate(),
            counter.estimate(),
            "estimate for key {}",
            key
        );
        prop_assert_eq!(
            back.state_bits(),
            counter.state_bits(),
            "state bits for key {}",
            key
        );
    }
    Ok(())
}

/// Drives a random write/freeze/checkpoint schedule and proves, for one
/// family: (a) the CoW snapshot at every freeze point is bit-identical to
/// the deep-clone snapshot of a twin engine fed the same stream; (b) the
/// base + deltas chain cut along the way folds back to exactly what one
/// final full checkpoint restores — and both restored engines continue
/// the same RNG stream under a follow-up batch.
fn assert_cow_and_chain_faithful<C: StateCodec + Clone + Send + Sync + 'static>(
    template: &C,
    shards: usize,
    seed: u64,
    schedule: &[(Vec<(u64, u64)>, bool)],
    follow_up: &[(u64, u64)],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let config = EngineConfig::new().with_shards(shards).with_seed(seed);
    let mut cow = CounterEngine::new(template.clone(), config);
    let mut deep = CounterEngine::new(template.clone(), config);

    let mut chain: Vec<Checkpoint> = Vec::new();
    for (batch, freeze) in schedule {
        cow.apply(batch);
        deep.apply(batch);
        if *freeze {
            let snap_cow = cow.snapshot();
            let snap_deep = deep.snapshot_deep();
            prop_assert_eq!(snap_cow.len(), snap_deep.len());
            prop_assert_eq!(snap_cow.total_events(), snap_deep.total_events());
            for (key, counter) in snap_cow.iter() {
                let twin = snap_deep.counter(key);
                prop_assert!(twin.is_some(), "key {} missing from deep freeze", key);
                prop_assert_eq!(
                    encoded(twin.expect("checked")),
                    encoded(counter),
                    "frozen state for key {}",
                    key
                );
            }
            // Extend the checkpoint chain from the CoW snapshot.
            let ck = match chain.last() {
                None => checkpoint_snapshot(&snap_cow),
                Some(parent) => {
                    checkpoint_delta(&snap_cow, &parent.header()).expect("same engine lineage")
                }
            };
            chain.push(ck);
        }
    }

    if !chain.is_empty() {
        // The chain tip describes the engine at its *last* freeze; replay
        // the same prefix on a fresh engine to get the full-checkpoint
        // twin of that same moment.
        let segments: Vec<&[u8]> = chain.iter().map(Checkpoint::bytes).collect();
        let mut via_chain = restore_checkpoint_chain(template, &segments).expect("intact chain");

        // Rebuild the stream prefix up to (and including) the last frozen
        // batch on a fresh engine — freezes themselves never perturb
        // counter evolution, so this is the same moment the chain tip
        // describes.
        let last_freeze = schedule
            .iter()
            .rposition(|(_, f)| *f)
            .expect("chain exists");
        let mut at_freeze = CounterEngine::new(template.clone(), config);
        for (batch, _) in &schedule[..=last_freeze] {
            at_freeze.apply(batch);
        }
        let mut via_full =
            restore_checkpoint(template, checkpoint_snapshot(&at_freeze.snapshot()).bytes())
                .expect("valid full checkpoint");

        prop_assert_eq!(via_chain.len(), via_full.len());
        prop_assert_eq!(via_chain.total_events(), via_full.total_events());
        for (key, counter) in via_full.iter() {
            let twin = via_chain.counter(key);
            prop_assert!(twin.is_some(), "key {} missing from chain restore", key);
            prop_assert_eq!(
                encoded(twin.expect("checked")),
                encoded(counter),
                "restored state for key {}",
                key
            );
        }
        // RNG streams: both restored engines must evolve identically.
        via_chain.apply(follow_up);
        via_full.apply(follow_up);
        for &(key, _) in follow_up {
            let a = via_chain.counter(key).map(encoded);
            let b = via_full.counter(key).map(encoded);
            prop_assert_eq!(a, b, "post-restore stream for key {}", key);
        }
    }
    Ok(())
}

/// A random write/freeze schedule: a few batches, each optionally
/// followed by a freeze+checkpoint.
fn schedules() -> impl Strategy<Value = Vec<(Vec<(u64, u64)>, bool)>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u64..300, 1u64..800), 1..25),
            proptest::arbitrary::any::<bool>(),
        ),
        1..8,
    )
}

proptest! {
    #[test]
    fn exact_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&ExactCounter::new(), shards, seed, &events)?;
    }

    #[test]
    fn morris_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&MorrisCounter::new(0.25).unwrap(), shards, seed, &events)?;
    }

    #[test]
    fn morris_plus_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&MorrisPlus::new(0.2, 8).unwrap(), shards, seed, &events)?;
    }

    #[test]
    fn nelson_yu_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        assert_restores_exactly(&template, shards, seed, &events)?;
    }

    #[test]
    fn csuros_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&CsurosCounter::new(8).unwrap(), shards, seed, &events)?;
    }

    #[test]
    fn sparse_u64_keyspace_round_trips(
        // Arbitrary keys anywhere in u64: exercises the Rice gap coder's
        // sparse regime and the first-key fixed field.
        events in prop::collection::vec((proptest::arbitrary::any::<u64>(), 1u64..50), 1..80),
        shards in 1usize..5,
    ) {
        assert_restores_exactly(&ExactCounter::new(), shards, 99, &events)?;
    }

    #[test]
    fn cow_freeze_and_delta_chains_are_faithful_for_every_family(
        schedule in schedules(),
        follow_up in prop::collection::vec((0u64..300, 1u64..200), 1..20),
        shards in 1usize..6,
        seed in 0u64..100_000,
    ) {
        assert_cow_and_chain_faithful(
            &ExactCounter::new(), shards, seed, &schedule, &follow_up)?;
        assert_cow_and_chain_faithful(
            &MorrisCounter::new(0.25).unwrap(), shards, seed, &schedule, &follow_up)?;
        assert_cow_and_chain_faithful(
            &MorrisPlus::new(0.2, 8).unwrap(), shards, seed, &schedule, &follow_up)?;
        assert_cow_and_chain_faithful(
            &NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap()),
            shards, seed, &schedule, &follow_up)?;
        assert_cow_and_chain_faithful(
            &CsurosCounter::new(8).unwrap(), shards, seed, &schedule, &follow_up)?;
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        events in prop::collection::vec((0u64..60, 1u64..500), 1..40),
        shards in 1usize..5,
        flip in proptest::arbitrary::any::<u64>(),
    ) {
        // Checksums make corruption detection total: flipping any one bit
        // anywhere in the checkpoint must yield a typed error (or, for a
        // handful of prefix bits, a different-but-typed magic/version
        // error). Never a panic, never a silently different engine.
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let (_, ck) = engine_and_checkpoint(&template, shards, 5, &events);
        let mut bytes = ck.bytes().to_vec();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            restore_checkpoint(&template, &bytes).is_err(),
            "flipping bit {} went undetected",
            bit
        );
    }

    #[test]
    fn any_single_bit_flip_in_a_delta_is_rejected(
        events in prop::collection::vec((0u64..60, 1u64..500), 1..40),
        extra in prop::collection::vec((0u64..60, 1u64..500), 1..20),
        flip in proptest::arbitrary::any::<u64>(),
    ) {
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let (mut engine, base) = engine_and_checkpoint(&template, 4, 5, &events);
        engine.apply(&extra);
        let delta = checkpoint_delta(&engine.snapshot(), &base.header()).unwrap();
        let mut bytes = delta.bytes().to_vec();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            restore_checkpoint_chain(&template, &[base.bytes(), &bytes]).is_err(),
            "flipping delta bit {} went undetected",
            bit
        );
    }

    #[test]
    fn truncation_at_any_point_is_rejected(
        events in prop::collection::vec((0u64..60, 1u64..500), 1..40),
        cut in proptest::arbitrary::any::<u64>(),
    ) {
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let (_, ck) = engine_and_checkpoint(&template, 3, 8, &events);
        let keep = (cut % ck.bytes().len() as u64) as usize;
        let err = restore_checkpoint(&template, &ck.bytes()[..keep]).unwrap_err();
        prop_assert!(
            matches!(err, CheckpointError::Truncated | CheckpointError::Corrupt { .. }),
            "unexpected error for {} kept bytes: {:?}",
            keep,
            err
        );
    }
}

#[test]
fn mismatched_template_families_are_refused() {
    let ny = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
    let events: Vec<(u64, u64)> = (0..50u64).map(|k| (k, k + 1)).collect();
    let (_, ck) = engine_and_checkpoint(&ny, 4, 1, &events);

    assert_eq!(
        restore_checkpoint(&MorrisCounter::new(0.5).unwrap(), ck.bytes()).unwrap_err(),
        CheckpointError::ScheduleMismatch
    );
    assert_eq!(
        restore_checkpoint(&CsurosCounter::new(8).unwrap(), ck.bytes()).unwrap_err(),
        CheckpointError::ScheduleMismatch
    );
    // Same family, different schedule: also refused.
    let other = NelsonYuCounter::new(NyParams::new(0.2, 9).unwrap());
    assert_eq!(
        restore_checkpoint(&other, ck.bytes()).unwrap_err(),
        CheckpointError::ScheduleMismatch
    );
}

#[test]
fn pinned_config_mismatch_is_refused() {
    let template = ExactCounter::new();
    let events: Vec<(u64, u64)> = (0..30u64).map(|k| (k, 2)).collect();
    let (engine, ck) = engine_and_checkpoint(&template, 4, 7, &events);

    let wrong_shards = EngineConfig::new().with_shards(5).with_seed(7);
    assert!(matches!(
        restore_checkpoint_expecting(&template, ck.bytes(), wrong_shards),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    let wrong_seed = EngineConfig::new().with_shards(4).with_seed(8);
    assert!(matches!(
        restore_checkpoint_expecting(&template, ck.bytes(), wrong_seed),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    let ok = restore_checkpoint_expecting(&template, ck.bytes(), engine.config()).unwrap();
    assert_eq!(ok.total_events(), engine.total_events());
}
