//! Property tests for the engine pipeline: `restore(checkpoint(engine))`
//! preserves every key's estimate, `state_bits`, and the RNG-independent
//! metadata (key count, exact event totals, config) across all five
//! counter families; corrupted checkpoints and mismatched restores are
//! rejected with typed errors, never a panic or a silently wrong engine.

use ac_core::{
    CsurosCounter, ExactCounter, Mergeable, MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams,
    StateCodec,
};
use ac_engine::{
    checkpoint_snapshot, restore_checkpoint, restore_checkpoint_expecting, Checkpoint,
    CheckpointError, CounterEngine, EngineConfig,
};
use ac_randkit::Xoshiro256PlusPlus;
use proptest::prelude::*;

/// Builds an engine over the given workload and checkpoints it.
fn engine_and_checkpoint<C: StateCodec + Mergeable + Clone>(
    template: &C,
    shards: usize,
    seed: u64,
    events: &[(u64, u64)],
) -> (CounterEngine<C>, Checkpoint) {
    let mut engine = CounterEngine::new(template.clone(), EngineConfig { shards, seed });
    engine.apply(events);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed ^ 0xC0DE);
    let snap = engine.snapshot(&mut rng).expect("uniform template merges");
    let ck = checkpoint_snapshot(&snap);
    (engine, ck)
}

/// The family-generic fidelity check.
fn assert_restores_exactly<C: StateCodec + Mergeable + Clone>(
    template: &C,
    shards: usize,
    seed: u64,
    events: &[(u64, u64)],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let (engine, ck) = engine_and_checkpoint(template, shards, seed, events);
    let restored = restore_checkpoint(template, ck.bytes()).expect("valid checkpoint");

    prop_assert_eq!(restored.len(), engine.len());
    prop_assert_eq!(restored.total_events(), engine.total_events());
    prop_assert_eq!(restored.config(), engine.config());
    prop_assert_eq!(
        restored.stats().counter_state_bits,
        ck.stats().counter_state_bits
    );
    for (key, counter) in engine.iter() {
        let back = restored.counter(key);
        prop_assert!(back.is_some(), "key {} lost", key);
        let back = back.expect("checked");
        prop_assert_eq!(
            back.estimate(),
            counter.estimate(),
            "estimate for key {}",
            key
        );
        prop_assert_eq!(
            back.state_bits(),
            counter.state_bits(),
            "state bits for key {}",
            key
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn exact_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&ExactCounter::new(), shards, seed, &events)?;
    }

    #[test]
    fn morris_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&MorrisCounter::new(0.25).unwrap(), shards, seed, &events)?;
    }

    #[test]
    fn morris_plus_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&MorrisPlus::new(0.2, 8).unwrap(), shards, seed, &events)?;
    }

    #[test]
    fn nelson_yu_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        assert_restores_exactly(&template, shards, seed, &events)?;
    }

    #[test]
    fn csuros_checkpoints_restore_exactly(
        events in prop::collection::vec((0u64..400, 1u64..3_000), 1..150),
        shards in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_restores_exactly(&CsurosCounter::new(8).unwrap(), shards, seed, &events)?;
    }

    #[test]
    fn sparse_u64_keyspace_round_trips(
        // Arbitrary keys anywhere in u64: exercises the Rice gap coder's
        // sparse regime and the first-key fixed field.
        events in prop::collection::vec((proptest::arbitrary::any::<u64>(), 1u64..50), 1..80),
        shards in 1usize..5,
    ) {
        assert_restores_exactly(&ExactCounter::new(), shards, 99, &events)?;
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        events in prop::collection::vec((0u64..60, 1u64..500), 1..40),
        shards in 1usize..5,
        flip in proptest::arbitrary::any::<u64>(),
    ) {
        // Checksums make corruption detection total: flipping any one bit
        // anywhere in the checkpoint must yield a typed error (or, for a
        // handful of prefix bits, a different-but-typed magic/version
        // error). Never a panic, never a silently different engine.
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let (_, ck) = engine_and_checkpoint(&template, shards, 5, &events);
        let mut bytes = ck.bytes().to_vec();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            restore_checkpoint(&template, &bytes).is_err(),
            "flipping bit {} went undetected",
            bit
        );
    }

    #[test]
    fn truncation_at_any_point_is_rejected(
        events in prop::collection::vec((0u64..60, 1u64..500), 1..40),
        cut in proptest::arbitrary::any::<u64>(),
    ) {
        let template = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
        let (_, ck) = engine_and_checkpoint(&template, 3, 8, &events);
        let keep = (cut % ck.bytes().len() as u64) as usize;
        let err = restore_checkpoint(&template, &ck.bytes()[..keep]).unwrap_err();
        prop_assert!(
            matches!(err, CheckpointError::Truncated | CheckpointError::Corrupt { .. }),
            "unexpected error for {} kept bytes: {:?}",
            keep,
            err
        );
    }
}

#[test]
fn mismatched_template_families_are_refused() {
    let ny = NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap());
    let events: Vec<(u64, u64)> = (0..50u64).map(|k| (k, k + 1)).collect();
    let (_, ck) = engine_and_checkpoint(&ny, 4, 1, &events);

    assert_eq!(
        restore_checkpoint(&MorrisCounter::new(0.5).unwrap(), ck.bytes()).unwrap_err(),
        CheckpointError::ScheduleMismatch
    );
    assert_eq!(
        restore_checkpoint(&CsurosCounter::new(8).unwrap(), ck.bytes()).unwrap_err(),
        CheckpointError::ScheduleMismatch
    );
    // Same family, different schedule: also refused.
    let other = NelsonYuCounter::new(NyParams::new(0.2, 9).unwrap());
    assert_eq!(
        restore_checkpoint(&other, ck.bytes()).unwrap_err(),
        CheckpointError::ScheduleMismatch
    );
}

#[test]
fn pinned_config_mismatch_is_refused() {
    let template = ExactCounter::new();
    let events: Vec<(u64, u64)> = (0..30u64).map(|k| (k, 2)).collect();
    let (engine, ck) = engine_and_checkpoint(&template, 4, 7, &events);

    let wrong_shards = EngineConfig { shards: 5, seed: 7 };
    assert!(matches!(
        restore_checkpoint_expecting(&template, ck.bytes(), wrong_shards),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    let wrong_seed = EngineConfig { shards: 4, seed: 8 };
    assert!(matches!(
        restore_checkpoint_expecting(&template, ck.bytes(), wrong_seed),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    let ok = restore_checkpoint_expecting(&template, ck.bytes(), engine.config()).unwrap();
    assert_eq!(ok.total_events(), engine.total_events());
}
