//! Ring-ingest guarantees, proven under real concurrency:
//!
//! * **per-producer FIFO, gapless, exactly-once** — a consumer watching
//!   the batch stream sees every producer's sequence numbers arrive in
//!   order with no gap and no repeat, and each batch's payload is the
//!   one that sequence number was stamped on;
//! * **no loss under stress** — many producers hammering tiny rings
//!   through the lossless `Block` policy conserve every event into the
//!   engine, for all five counter families built via [`CounterSpec`];
//! * **bit-identical durability** — ring-based ingest produces
//!   checkpoint *bytes* identical to the retired mutex+condvar queue fed
//!   the same stream (property test).

use ac_core::CounterSpec;
use ac_engine::{
    checkpoint_snapshot, BackpressurePolicy, CounterEngine, EngineConfig, IngestConfig, IngestQueue,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::thread;

fn all_specs() -> [CounterSpec; 5] {
    [
        CounterSpec::Exact,
        CounterSpec::Morris { a: 0.5 },
        CounterSpec::MorrisPlus {
            eps: 0.2,
            delta_log2: 6,
        },
        CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 6,
        },
        CounterSpec::Csuros { mantissa_bits: 4 },
    ]
}

/// A consumer that watches the raw batch stream proves the ordering
/// contract directly: for every producer, sequence numbers arrive
/// strictly `1, 2, 3, …` (FIFO and gapless — a reorder, loss, or
/// duplicate anywhere in the ring path would break the chain), and each
/// batch carries exactly the payload its sequence number was stamped on.
#[test]
fn per_producer_streams_arrive_fifo_gapless_exactly_once() {
    const PRODUCERS: u64 = 3;
    const BATCHES: u64 = 400;

    // Tiny rings force constant wraparound and producer parking.
    let queue = IngestQueue::new(
        IngestConfig::new()
            .with_ring_batches(4)
            .with_batch_pairs(1_024)
            .with_policy(BackpressurePolicy::Block),
    );

    thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let mut prod = queue.producer();
            handles.push(s.spawn(move || {
                let id = prod.id();
                for seq in 1..=BATCHES {
                    // One pair per batch, derived from (id, seq): the
                    // consumer can verify the payload belongs to the
                    // sequence number, not just the stamp.
                    prod.record(id * 1_000_000 + seq, seq);
                    prod.send().expect("queue open");
                }
            }));
        }
        s.spawn(|| {
            for h in handles {
                h.join().expect("producer");
            }
            queue.close();
        });

        let mut last_seq: HashMap<u64, u64> = HashMap::new();
        let mut seen = 0u64;
        while let Some(batch) = queue.next_batch() {
            let last = last_seq.entry(batch.producer).or_insert(0);
            assert_eq!(
                batch.seq,
                *last + 1,
                "producer {} stream has a gap, repeat, or reorder",
                batch.producer
            );
            *last = batch.seq;
            assert_eq!(
                batch.pairs,
                vec![(batch.producer * 1_000_000 + batch.seq, batch.seq)],
                "payload does not match its sequence stamp"
            );
            seen += 1;
        }
        assert_eq!(
            seen,
            PRODUCERS * BATCHES,
            "every batch arrives exactly once"
        );
        for (&producer, &last) in &last_seq {
            assert_eq!(last, BATCHES, "producer {producer} truncated");
        }
    });
}

/// Concurrent multi-producer stress through the pooled applier, one run
/// per counter family: under `Block` nothing may be lost, whatever
/// family the shards hold — `total_events` counts applied deltas
/// exactly even when the counters themselves are approximate.
#[test]
fn lossless_stress_conserves_events_for_all_five_families() {
    const PRODUCERS: u64 = 4;
    const RECORDS: u64 = 2_000;

    for spec in all_specs() {
        let family = spec.build().expect("valid spec");
        let mut engine =
            CounterEngine::new(family, EngineConfig::new().with_shards(4).with_seed(9));
        let queue = IngestQueue::new(
            IngestConfig::new()
                .with_ring_batches(2)
                .with_batch_pairs(8)
                .with_policy(BackpressurePolicy::Block),
        );

        let mut expected = 0u64;
        for p in 0..PRODUCERS {
            for i in 0..RECORDS {
                expected += 1 + (p + i) % 7;
            }
        }

        let applied = thread::scope(|s| {
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let mut prod = queue.producer();
                handles.push(s.spawn(move || {
                    for i in 0..RECORDS {
                        prod.record(i % 61, 1 + (p + i) % 7);
                    }
                    prod.send().expect("queue open");
                }));
            }
            s.spawn(|| {
                for h in handles {
                    h.join().expect("producer");
                }
                queue.close();
            });
            queue.drain_pooled(&mut engine)
        });

        assert_eq!(applied, expected, "{spec:?}: drain undercounted");
        assert_eq!(
            engine.total_events(),
            expected,
            "{spec:?}: events lost in the ring path"
        );
        let stats = queue.stats();
        assert_eq!(stats.dropped_events, 0, "{spec:?}: Block must be lossless");
        for mark in &stats.producers {
            assert_eq!(
                mark.applied_seq, mark.enqueued_seq,
                "{spec:?}: producer {} not fully applied",
                mark.producer
            );
        }
    }
}

fn drain_via_ring(
    spec: CounterSpec,
    seed: u64,
    events: &[(u64, u64)],
) -> CounterEngine<ac_core::CounterFamily> {
    let mut engine = CounterEngine::new(
        spec.build().expect("valid spec"),
        EngineConfig::new().with_shards(4).with_seed(seed),
    );
    let queue = IngestQueue::new(
        IngestConfig::new()
            .with_ring_batches(256)
            .with_batch_pairs(16),
    );
    let mut prod = queue.producer();
    for &(key, delta) in events {
        prod.record(key, delta);
    }
    drop(prod);
    queue.close();
    queue.drain_parallel(&mut engine);
    engine
}

#[allow(deprecated)]
fn drain_via_legacy_queue(
    spec: CounterSpec,
    seed: u64,
    events: &[(u64, u64)],
) -> CounterEngine<ac_core::CounterFamily> {
    let mut engine = CounterEngine::new(
        spec.build().expect("valid spec"),
        EngineConfig::new().with_shards(4).with_seed(seed),
    );
    let queue = ac_engine::LegacyIngestQueue::new(
        IngestConfig::new()
            .with_ring_batches(256)
            .with_batch_pairs(16),
    );
    let mut prod = queue.producer();
    for &(key, delta) in events {
        prod.record(key, delta);
    }
    drop(prod);
    queue.close();
    queue.drain_parallel(&mut engine);
    engine
}

proptest! {
    /// The redesign's durability contract: swap the whole ingest layer
    /// out from under the engine and the checkpoint *bytes* do not move.
    /// Same stream through the lock-free rings and through the retired
    /// mutex+condvar queue, one engine each, same seed — the serialized
    /// frames must be identical down to the last bit, for every family.
    #[test]
    fn ring_ingest_checkpoints_bit_identical_to_legacy_queue(
        seed in 0u64..1_000,
        spec_idx in 0usize..5,
        events in proptest::collection::vec((0u64..200u64, 1u64..50u64), 1..300),
    ) {
        let spec = all_specs()[spec_idx];
        let mut ring = drain_via_ring(spec, seed, &events);
        let mut legacy = drain_via_legacy_queue(spec, seed, &events);

        prop_assert_eq!(ring.total_events(), legacy.total_events());
        let a = checkpoint_snapshot(&ring.snapshot());
        let b = checkpoint_snapshot(&legacy.snapshot());
        prop_assert_eq!(
            a.bytes(),
            b.bytes(),
            "checkpoint bytes diverged for {:?}",
            spec
        );
    }
}
