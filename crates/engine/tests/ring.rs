//! Ring-ingest guarantees, proven under real concurrency:
//!
//! * **per-producer FIFO, gapless, exactly-once** — a consumer watching
//!   the batch stream sees every producer's sequence numbers arrive in
//!   order with no gap and no repeat, and each batch's payload is the
//!   one that sequence number was stamped on;
//! * **no loss under stress** — many producers hammering tiny rings
//!   through the lossless `Block` policy conserve every event into the
//!   engine, for all five counter families built via [`CounterSpec`];
//! * **bit-identical durability** — ring-based ingest produces
//!   checkpoint *bytes* identical to the retired mutex+condvar queue fed
//!   the same stream (property test).

use ac_core::CounterSpec;
use ac_engine::{
    checkpoint_snapshot, BackpressurePolicy, CounterEngine, EngineConfig, IngestConfig, IngestQueue,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::thread;

fn all_specs() -> [CounterSpec; 5] {
    [
        CounterSpec::Exact,
        CounterSpec::Morris { a: 0.5 },
        CounterSpec::MorrisPlus {
            eps: 0.2,
            delta_log2: 6,
        },
        CounterSpec::NelsonYu {
            eps: 0.2,
            delta_log2: 6,
        },
        CounterSpec::Csuros { mantissa_bits: 4 },
    ]
}

/// A consumer that watches the raw batch stream proves the ordering
/// contract directly: for every producer, sequence numbers arrive
/// strictly `1, 2, 3, …` (FIFO and gapless — a reorder, loss, or
/// duplicate anywhere in the ring path would break the chain), and each
/// batch carries exactly the payload its sequence number was stamped on.
#[test]
fn per_producer_streams_arrive_fifo_gapless_exactly_once() {
    const PRODUCERS: u64 = 3;
    const BATCHES: u64 = 400;

    // Tiny rings force constant wraparound and producer parking.
    let queue = IngestQueue::new(
        IngestConfig::new()
            .with_ring_batches(4)
            .with_batch_pairs(1_024)
            .with_policy(BackpressurePolicy::Block),
    );

    thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let mut prod = queue.producer();
            handles.push(s.spawn(move || {
                let id = prod.id();
                for seq in 1..=BATCHES {
                    // One pair per batch, derived from (id, seq): the
                    // consumer can verify the payload belongs to the
                    // sequence number, not just the stamp.
                    prod.record(id * 1_000_000 + seq, seq);
                    prod.send().expect("queue open");
                }
            }));
        }
        s.spawn(|| {
            for h in handles {
                h.join().expect("producer");
            }
            queue.close();
        });

        let mut last_seq: HashMap<u64, u64> = HashMap::new();
        let mut seen = 0u64;
        while let Some(batch) = queue.next_batch() {
            let last = last_seq.entry(batch.producer).or_insert(0);
            assert_eq!(
                batch.seq,
                *last + 1,
                "producer {} stream has a gap, repeat, or reorder",
                batch.producer
            );
            *last = batch.seq;
            assert_eq!(
                batch.pairs,
                vec![(batch.producer * 1_000_000 + batch.seq, batch.seq)],
                "payload does not match its sequence stamp"
            );
            seen += 1;
        }
        assert_eq!(
            seen,
            PRODUCERS * BATCHES,
            "every batch arrives exactly once"
        );
        for (&producer, &last) in &last_seq {
            assert_eq!(last, BATCHES, "producer {producer} truncated");
        }
    });
}

/// Concurrent multi-producer stress through the pooled applier, one run
/// per counter family: under `Block` nothing may be lost, whatever
/// family the shards hold — `total_events` counts applied deltas
/// exactly even when the counters themselves are approximate.
#[test]
fn lossless_stress_conserves_events_for_all_five_families() {
    const PRODUCERS: u64 = 4;
    const RECORDS: u64 = 2_000;

    for spec in all_specs() {
        let family = spec.build().expect("valid spec");
        let mut engine =
            CounterEngine::new(family, EngineConfig::new().with_shards(4).with_seed(9));
        let queue = IngestQueue::new(
            IngestConfig::new()
                .with_ring_batches(2)
                .with_batch_pairs(8)
                .with_policy(BackpressurePolicy::Block),
        );

        let mut expected = 0u64;
        for p in 0..PRODUCERS {
            for i in 0..RECORDS {
                expected += 1 + (p + i) % 7;
            }
        }

        let applied = thread::scope(|s| {
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let mut prod = queue.producer();
                handles.push(s.spawn(move || {
                    for i in 0..RECORDS {
                        prod.record(i % 61, 1 + (p + i) % 7);
                    }
                    prod.send().expect("queue open");
                }));
            }
            s.spawn(|| {
                for h in handles {
                    h.join().expect("producer");
                }
                queue.close();
            });
            queue.drain_pooled(&mut engine)
        });

        assert_eq!(applied, expected, "{spec:?}: drain undercounted");
        assert_eq!(
            engine.total_events(),
            expected,
            "{spec:?}: events lost in the ring path"
        );
        let stats = queue.stats();
        assert_eq!(stats.dropped_events, 0, "{spec:?}: Block must be lossless");
        for mark in &stats.producers {
            assert_eq!(
                mark.applied_seq, mark.enqueued_seq,
                "{spec:?}: producer {} not fully applied",
                mark.producer
            );
        }
    }
}

fn drain_via_ring(
    spec: CounterSpec,
    seed: u64,
    events: &[(u64, u64)],
) -> CounterEngine<ac_core::CounterFamily> {
    let mut engine = CounterEngine::new(
        spec.build().expect("valid spec"),
        EngineConfig::new().with_shards(4).with_seed(seed),
    );
    let queue = IngestQueue::new(
        IngestConfig::new()
            .with_ring_batches(256)
            .with_batch_pairs(16),
    );
    let mut prod = queue.producer();
    for &(key, delta) in events {
        prod.record(key, delta);
    }
    drop(prod);
    queue.close();
    queue.drain_parallel(&mut engine);
    engine
}

#[allow(deprecated)]
fn drain_via_legacy_queue(
    spec: CounterSpec,
    seed: u64,
    events: &[(u64, u64)],
) -> CounterEngine<ac_core::CounterFamily> {
    let mut engine = CounterEngine::new(
        spec.build().expect("valid spec"),
        EngineConfig::new().with_shards(4).with_seed(seed),
    );
    let queue = ac_engine::LegacyIngestQueue::new(
        IngestConfig::new()
            .with_ring_batches(256)
            .with_batch_pairs(16),
    );
    let mut prod = queue.producer();
    for &(key, delta) in events {
        prod.record(key, delta);
    }
    drop(prod);
    queue.close();
    queue.drain_parallel(&mut engine);
    engine
}

proptest! {
    /// The redesign's durability contract: swap the whole ingest layer
    /// out from under the engine and the checkpoint *bytes* do not move.
    /// Same stream through the lock-free rings and through the retired
    /// mutex+condvar queue, one engine each, same seed — the serialized
    /// frames must be identical down to the last bit, for every family.
    #[test]
    fn ring_ingest_checkpoints_bit_identical_to_legacy_queue(
        seed in 0u64..1_000,
        spec_idx in 0usize..5,
        events in proptest::collection::vec((0u64..200u64, 1u64..50u64), 1..300),
    ) {
        let spec = all_specs()[spec_idx];
        let mut ring = drain_via_ring(spec, seed, &events);
        let mut legacy = drain_via_legacy_queue(spec, seed, &events);

        prop_assert_eq!(ring.total_events(), legacy.total_events());
        let a = checkpoint_snapshot(&ring.snapshot());
        let b = checkpoint_snapshot(&legacy.snapshot());
        prop_assert_eq!(
            a.bytes(),
            b.bytes(),
            "checkpoint bytes diverged for {:?}",
            spec
        );
    }

    /// The tentpole's durability contract: moving the shard routing from
    /// the drain side (pooled dispatcher copy) to the send side (routed
    /// per-(producer, shard) lanes) must not move the checkpoint *bytes*.
    /// Same single-producer stream through both drains, one engine each,
    /// same seed — identical frames, for every family.
    #[test]
    fn routed_ingest_checkpoints_bit_identical_to_pooled(
        seed in 0u64..1_000,
        spec_idx in 0usize..5,
        events in proptest::collection::vec((0u64..200u64, 1u64..50u64), 1..300),
    ) {
        let spec = all_specs()[spec_idx];
        let mut pooled = drain_via_pooled(spec, seed, &events);
        let mut routed = drain_via_routed(spec, seed, &events);

        prop_assert_eq!(pooled.total_events(), routed.total_events());
        let a = checkpoint_snapshot(&pooled.snapshot());
        let b = checkpoint_snapshot(&routed.snapshot());
        prop_assert_eq!(
            a.bytes(),
            b.bytes(),
            "routed checkpoint bytes diverged from pooled for {:?}",
            spec
        );
    }
}

fn drain_via_pooled(
    spec: CounterSpec,
    seed: u64,
    events: &[(u64, u64)],
) -> CounterEngine<ac_core::CounterFamily> {
    let mut engine = CounterEngine::new(
        spec.build().expect("valid spec"),
        EngineConfig::new().with_shards(4).with_seed(seed),
    );
    let queue = IngestQueue::new(
        IngestConfig::new()
            .with_ring_batches(256)
            .with_batch_pairs(16),
    );
    let mut prod = queue.producer();
    for &(key, delta) in events {
        prod.record(key, delta);
    }
    drop(prod);
    queue.close();
    queue.drain_pooled(&mut engine);
    engine
}

fn drain_via_routed(
    spec: CounterSpec,
    seed: u64,
    events: &[(u64, u64)],
) -> CounterEngine<ac_core::CounterFamily> {
    let mut engine = CounterEngine::new(
        spec.build().expect("valid spec"),
        EngineConfig::new().with_shards(4).with_seed(seed),
    );
    let queue = IngestQueue::new_routed(
        IngestConfig::new()
            .with_ring_batches(256)
            .with_batch_pairs(16),
        engine.router(),
    );
    let mut prod = queue.producer();
    for &(key, delta) in events {
        prod.record(key, delta);
    }
    drop(prod);
    queue.close();
    queue.drain_routed(&mut engine);
    engine
}

/// The routed twin of the pooled stress test: many producers hammering
/// tiny per-shard lanes through `Block` must still conserve every event,
/// for all five families, with every producer's applied mark caught up.
#[test]
fn routed_lossless_stress_conserves_events_for_all_five_families() {
    const PRODUCERS: u64 = 4;
    const RECORDS: u64 = 2_000;

    for spec in all_specs() {
        let family = spec.build().expect("valid spec");
        let mut engine =
            CounterEngine::new(family, EngineConfig::new().with_shards(4).with_seed(9));
        let queue = IngestQueue::new_routed(
            IngestConfig::new()
                .with_ring_batches(2)
                .with_batch_pairs(8)
                .with_policy(BackpressurePolicy::Block),
            engine.router(),
        );

        let mut expected = 0u64;
        for p in 0..PRODUCERS {
            for i in 0..RECORDS {
                expected += 1 + (p + i) % 7;
            }
        }

        let applied = thread::scope(|s| {
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let mut prod = queue.producer();
                handles.push(s.spawn(move || {
                    for i in 0..RECORDS {
                        prod.record(i % 61, 1 + (p + i) % 7);
                    }
                    prod.send().expect("queue open");
                }));
            }
            s.spawn(|| {
                for h in handles {
                    h.join().expect("producer");
                }
                queue.close();
            });
            queue.drain_routed(&mut engine)
        });

        assert_eq!(applied, expected, "{spec:?}: routed drain undercounted");
        assert_eq!(
            engine.total_events(),
            expected,
            "{spec:?}: events lost in the routed lane path"
        );
        let stats = queue.stats();
        assert_eq!(stats.dropped_events, 0, "{spec:?}: Block must be lossless");
        for mark in &stats.producers {
            assert_eq!(
                mark.applied_seq, mark.enqueued_seq,
                "{spec:?}: producer {} not fully applied",
                mark.producer
            );
        }
    }
}

/// `Fail` under per-shard lane backpressure: a batch is refused
/// all-or-nothing when *any* of its destination lanes is full, the
/// refusal hands back the batch with pairs in their original first-touch
/// order, and the producer's speculative sequence mark rolls back
/// exactly — a later resubmit reuses the same sequence number, so once a
/// drain starts, totals are conserved with nothing dropped.
#[test]
fn routed_fail_policy_rolls_back_and_conserves_under_lane_backpressure() {
    let mut engine = CounterEngine::new(
        CounterSpec::Exact.build().expect("valid spec"),
        EngineConfig::new().with_shards(4).with_seed(3),
    );
    let router = engine.router();
    // Two keys on one shard, one key on a different shard: enough to
    // build a cross-lane batch whose refusal must be all-or-nothing.
    let same_shard: Vec<u64> = (0..1_000u64)
        .filter(|&k| router.shard_of(k) == router.shard_of(0))
        .take(2)
        .collect();
    let other = (0..1_000u64)
        .find(|&k| router.shard_of(k) != router.shard_of(0))
        .expect("4 shards hold more than one lane");

    let queue = IngestQueue::new_routed(
        IngestConfig::new()
            .with_ring_batches(1) // one-slot lanes
            .with_batch_pairs(4)
            .with_policy(BackpressurePolicy::Fail),
        router,
    );
    let mut prod = queue.producer();

    // Fill shard-0's lane (no drain running yet).
    prod.record(same_shard[0], 5);
    prod.try_send().expect("first batch fits the empty lane");
    assert_eq!(prod.last_seq(), 1);

    // A batch straddling a full lane and an empty one: refused whole.
    prod.record(other, 7);
    prod.record(same_shard[1], 9);
    prod.record(other, 4); // coalesces with the first `other` pair
    let err = prod.try_send().expect_err("shard-0 lane is full");
    assert!(err.is_full());
    let batch = err.into_batch();
    assert_eq!(
        batch.pairs,
        vec![(other, 11), (same_shard[1], 9)],
        "refusal hands back the batch in first-touch order"
    );
    assert_eq!(batch.seq, 2, "the refused sequence number was reserved");
    let mark = &queue.stats().producers[0];
    assert_eq!(
        mark.enqueued_seq, 1,
        "speculative mark rolled back exactly on refusal"
    );

    // With a drain running the held batch eventually lands — same seq,
    // nothing dropped, empty-lane pairs never applied twice.
    thread::scope(|s| {
        s.spawn(|| {
            let mut held = Some(batch);
            while let Some(b) = held.take() {
                match prod.resubmit(b) {
                    Ok(()) => break,
                    Err(e) => {
                        assert!(e.is_full(), "only Full is acceptable while open");
                        held = Some(e.into_batch());
                        thread::yield_now();
                    }
                }
            }
            assert_eq!(prod.last_seq(), 2, "resubmit reused the rolled-back seq");
            queue.close();
        });
        queue.drain_routed(&mut engine);
    });

    assert_eq!(
        engine.total_events(),
        5 + 11 + 9,
        "every event applied once"
    );
    let stats = queue.stats();
    assert_eq!(stats.dropped_events, 0, "Fail never drops silently");
    assert_eq!(stats.producers[0].applied_seq, 2);
    assert_eq!(stats.producers[0].enqueued_seq, 2);
}
