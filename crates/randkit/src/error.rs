//! Error type for distribution construction.

use std::fmt;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A probability parameter was outside its valid range.
    ProbabilityOutOfRange {
        /// Human-readable name of the offending parameter.
        param: &'static str,
        /// The range that was required, e.g. `"(0, 1]"`.
        required: &'static str,
    },
    /// A count/size parameter was outside its valid range.
    CountOutOfRange {
        /// Human-readable name of the offending parameter.
        param: &'static str,
        /// The range that was required.
        required: &'static str,
    },
    /// A shape parameter (e.g. a Zipf exponent) was not finite or not
    /// positive.
    InvalidShape {
        /// Human-readable name of the offending parameter.
        param: &'static str,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::ProbabilityOutOfRange { param, required } => {
                write!(f, "probability parameter `{param}` must lie in {required}")
            }
            DistError::CountOutOfRange { param, required } => {
                write!(f, "count parameter `{param}` must lie in {required}")
            }
            DistError::InvalidShape { param } => {
                write!(f, "shape parameter `{param}` must be finite and positive")
            }
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DistError::ProbabilityOutOfRange {
            param: "p",
            required: "(0, 1]",
        };
        let s = e.to_string();
        assert!(s.contains('p') && s.contains("(0, 1]"));
    }
}
