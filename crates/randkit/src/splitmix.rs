//! SplitMix64: a tiny, fast generator used for seeding and stream
//! splitting.
//!
//! Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
//! Generators", OOPSLA 2014; the constants below are the public-domain
//! variant popularized by Vigna and used to seed xoshiro generators.

use crate::RandomSource;

/// The 64-bit finalizer at the heart of SplitMix64.
///
/// This is a bijection on `u64` with good avalanche properties; it is used
/// by the generator, by [`crate::trial_seed`], and — exported — as the
/// workspace's one canonical mixing fold (parameter fingerprints in
/// `ac-core`, checkpoint header checksums in `ac-engine`), so the magic
/// constants live in exactly one place.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 pseudorandom generator.
///
/// Period `2^64`; one addition and one finalizer call per output. Not meant
/// as the workhorse generator (use [`crate::Xoshiro256PlusPlus`]) but ideal
/// for deriving seeds: any seed, including zero, is fine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment; coprime to 2^64 so the state walks the full
    /// cycle.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator from any 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Alias of [`SplitMix64::new`], mirroring the constructor naming used
    /// by the other generators in this crate.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 0, from the canonical C implementation
    /// (Vigna, <https://prng.di.unimi.it/splitmix64.c>).
    #[test]
    fn matches_reference_vector_seed_zero() {
        let mut g = SplitMix64::new(0);
        let expected: [u64; 5] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mix64_is_injective_on_small_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }
}
