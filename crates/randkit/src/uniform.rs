//! Uniform integer and floating-point range distributions.

use crate::{DistError, RandomSource};

/// Uniform distribution over the inclusive integer range `[lo, hi]`.
///
/// Figure 1 of the paper draws `N ~ Uniform[500000, 999999]`; this type is
/// the reusable form of that draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformU64 {
    lo: u64,
    hi: u64,
}

impl UniformU64 {
    /// Creates the distribution over `[lo, hi]` (both inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::CountOutOfRange`] if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Result<Self, DistError> {
        if lo > hi {
            return Err(DistError::CountOutOfRange {
                param: "lo..=hi",
                required: "lo <= hi",
            });
        }
        Ok(Self { lo, hi })
    }

    /// Lower endpoint (inclusive).
    #[must_use]
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper endpoint (inclusive).
    #[must_use]
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Draws a value.
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_range_inclusive(self.lo, self.hi)
    }
}

/// Uniform distribution over the half-open real interval `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformF64 {
    lo: f64,
    hi: f64,
}

impl UniformF64 {
    /// Creates the distribution over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidShape`] unless `lo < hi` and both are
    /// finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(DistError::InvalidShape { param: "lo..hi" });
        }
        Ok(Self { lo, hi })
    }

    /// Draws a value.
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn u64_rejects_empty() {
        assert!(UniformU64::new(5, 4).is_err());
        assert!(UniformU64::new(5, 5).is_ok());
    }

    #[test]
    fn u64_point_range() {
        let d = UniformU64::new(9, 9).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 9);
        }
    }

    #[test]
    fn u64_stays_in_range_and_mean_is_centered() {
        let d = UniformU64::new(500_000, 999_999).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0f64;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((500_000..=999_999).contains(&x));
            sum += x as f64;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 749_999.5).abs() < 2_000.0, "mean={mean}");
    }

    #[test]
    fn f64_rejects_bad_ranges() {
        assert!(UniformF64::new(1.0, 1.0).is_err());
        assert!(UniformF64::new(2.0, 1.0).is_err());
        assert!(UniformF64::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn f64_stays_in_range() {
        let d = UniformF64::new(-2.0, 3.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
