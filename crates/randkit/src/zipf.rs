//! Zipf-distributed key popularity, via an exact Walker/Vose alias table.
//!
//! The paper's motivating scenario — "an analytics system may maintain many
//! such counters (for example, the number of visits to each page on
//! Wikipedia)" — calls for heavy-tailed key frequencies. [`Zipf`] samples
//! keys `1..=n` with `P[k] ∝ k^{-s}` exactly, in O(1) per draw after an
//! O(n) setup, using the embedded [`AliasTable`].

use crate::{DistError, RandomSource};

/// Walker/Vose alias table: O(1) exact sampling from any finite discrete
/// distribution given as non-negative weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of the "home" symbol in each column.
    prob: Vec<f64>,
    /// The alternative symbol in each column.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from `weights` (need not be normalized).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidShape`] if `weights` is empty, contains
    /// a negative or non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return Err(DistError::InvalidShape { param: "weights" });
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|&w| w.is_nan() || w < 0.0) {
            return Err(DistError::InvalidShape { param: "weights" });
        }

        // Vose's algorithm: scale weights to mean 1, then repeatedly pair a
        // column below 1 with one above 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            alias[s as usize] = l;
            // The large column donates (1 - prob[s]) of its mass.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains is 1.0 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Ok(Self { prob, alias })
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no symbols (never constructible; kept for
    /// API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a symbol index in `[0, len)`.
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> usize {
        let col = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// Zipf distribution over `{1, …, n}` with exponent `s ≥ 0`:
/// `P[k] = k^{-s} / H_{n,s}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    table: AliasTable,
    weights: Vec<f64>,
    harmonic: f64,
}

impl Zipf {
    /// Creates the distribution over `{1, …, n}` with exponent `s`.
    ///
    /// `s = 0` is the uniform distribution; `s = 1` is the classic Zipf
    /// law. Setup is O(n): intended for `n` up to a few million.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::CountOutOfRange`] when `n == 0` and
    /// [`DistError::InvalidShape`] when `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Result<Self, DistError> {
        if n == 0 || n > (u32::MAX as u64) {
            return Err(DistError::CountOutOfRange {
                param: "n",
                required: "1..=u32::MAX",
            });
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(DistError::InvalidShape { param: "s" });
        }
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let harmonic: f64 = weights.iter().sum();
        let table = AliasTable::new(&weights)?;
        Ok(Self {
            n,
            s,
            table,
            weights,
            harmonic,
        })
    }

    /// Universe size `n`.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    #[must_use]
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Exact probability of key `k` (1-based); 0 outside `{1..=n}`.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k > self.n {
            return 0.0;
        }
        self.weights[(k - 1) as usize] / self.harmonic
    }

    /// The generalized harmonic number `H_{n,s}` (the normalizing
    /// constant).
    #[must_use]
    pub fn harmonic(&self) -> f64 {
        self.harmonic
    }

    /// Draws a key in `{1, …, n}`.
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        self.table.sample(rng) as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn alias_rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -1.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn alias_single_symbol() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_matches_weights_empirically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0 * f64::from(n);
            let sigma = (expected * (1.0 - weights[i] / 10.0)).sqrt();
            assert!(
                ((c as f64) - expected).abs() < 6.0 * sigma,
                "symbol {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn alias_zero_weight_symbol_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..50_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(1_000, 1.0).unwrap();
        let total: f64 = (1..=1_000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(1_001), 0.0);
    }

    #[test]
    fn zipf_s0_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_head_frequency_matches_pmf() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let n = 200_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        let freq = ones as f64 / f64::from(n);
        let p1 = z.pmf(1);
        assert!((freq - p1).abs() < 0.01, "freq={freq}, p1={p1}");
    }

    #[test]
    fn zipf_samples_in_support() {
        let z = Zipf::new(37, 1.2).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=37).contains(&k));
        }
    }
}
