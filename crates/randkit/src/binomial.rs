//! Binomial sampling: BINV inversion for small mean, BTPE for large.
//!
//! Used by the workload generators (splitting a stream of length `L` among
//! `M` keys requires `Binomial(L, p)` draws with `L` up to `2^40`) and by
//! epoch-skipping simulation. Direct summation of Bernoulli coins would be
//! `O(n)`; these algorithms are `O(1)` expected for any `n`.
//!
//! References:
//! * BINV: Devroye, *Non-Uniform Random Variate Generation*, ch. X.4.
//! * BTPE: Kachitvichyanukul & Schmeiser, "Binomial random variate
//!   generation", CACM 31(2), 1988.

use crate::{DistError, RandomSource};

/// Threshold on `n·min(p,1-p)` below which BINV inversion is used.
const BINV_THRESHOLD: f64 = 10.0;

/// Binomial distribution `Bin(n, p)`.
///
/// Construction precomputes the sampling plan, so a `Binomial` value can be
/// reused cheaply; one-shot use is also fine (setup is a handful of
/// floating-point operations).
#[derive(Debug, Clone)]
pub struct Binomial {
    n: u64,
    p: f64,
    method: Method,
}

#[derive(Debug, Clone)]
enum Method {
    /// p == 0 or p == 1 or n == 0: the result is constant.
    Constant(u64),
    /// Inversion from the mode-0 side; `flipped` means we sampled
    /// `Bin(n, 1-p)` and must return `n - x`.
    Binv(Binv),
    /// The BTPE rejection algorithm; same `flipped` convention.
    Btpe(Btpe),
}

#[derive(Debug, Clone)]
struct Binv {
    n: u64,
    /// `s = r/q` where `r = min(p, 1-p)`, `q = 1-r`.
    s: f64,
    /// `a = (n+1)·s`.
    a: f64,
    /// `q^n`, the probability of zero successes.
    q_pow_n: f64,
    flipped: bool,
}

#[derive(Debug, Clone)]
struct Btpe {
    n: u64,
    /// `r = min(p, 1-p)`.
    r: f64,
    q: f64,
    /// `n·r·q`.
    npq: f64,
    /// mode-ish center `f_m = n·r + r` and `m = ⌊f_m⌋`.
    f_m: f64,
    m: i64,
    p1: f64,
    x_m: f64,
    x_l: f64,
    x_r: f64,
    c: f64,
    lambda_l: f64,
    lambda_r: f64,
    p2: f64,
    p3: f64,
    p4: f64,
    flipped: bool,
}

impl Binomial {
    /// Creates `Bin(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::ProbabilityOutOfRange`] unless `p` is a finite
    /// number in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, DistError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(DistError::ProbabilityOutOfRange {
                param: "p",
                required: "[0, 1]",
            });
        }
        let method = if n == 0 || p == 0.0 {
            Method::Constant(0)
        } else if p == 1.0 {
            Method::Constant(n)
        } else {
            let flipped = p > 0.5;
            let r = if flipped { 1.0 - p } else { p };
            let q = 1.0 - r;
            if (n as f64) * r < BINV_THRESHOLD {
                Method::Binv(Binv {
                    n,
                    s: r / q,
                    a: ((n + 1) as f64) * (r / q),
                    // q^n = exp(n ln(1-r)); with n·r < 10 this cannot
                    // underflow (n ln q ≥ -10/(1-r) ≥ -20 for r ≤ 1/2).
                    // ln_1p keeps it exact for r < 2^-53, where computing
                    // ln(q) from the rounded q = 1.0 would collapse the
                    // whole pmf onto zero successes.
                    q_pow_n: ((n as f64) * (-r).ln_1p()).exp(),
                    flipped,
                })
            } else {
                Method::Btpe(Btpe::setup(n, r, flipped))
            }
        };
        Ok(Self { n, p, method })
    }

    /// Number of trials `n`.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `n·p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// The variance `n·p·(1-p)`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draws the number of successes among `n` Bernoulli(`p`) trials.
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.method {
            Method::Constant(k) => *k,
            Method::Binv(b) => b.sample(rng),
            Method::Btpe(b) => b.sample(rng),
        }
    }

    /// One-shot draw from `Bin(n, p)` without keeping the sampling plan.
    ///
    /// This is the bulk-subsampling primitive of the counter fast-forward
    /// paths: every call carries a different trial count (the remaining
    /// increment budget) and a different rate (the current epoch's `α`),
    /// so there is nothing to reuse — setup is a handful of flops and the
    /// draw stays `O(1)` expected for any `n`.
    ///
    /// # Errors
    ///
    /// Same as [`Binomial::new`].
    pub fn sample_n<R: RandomSource + ?Sized>(
        n: u64,
        p: f64,
        rng: &mut R,
    ) -> Result<u64, DistError> {
        Ok(Self::new(n, p)?.sample(rng))
    }
}

impl Binv {
    fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inversion by sequential search from x = 0, restarting on the
        // (astronomically rare) event that accumulated f64 error exhausts
        // the pmf mass before reaching u.
        loop {
            let mut r = self.q_pow_n;
            let mut u = rng.next_f64();
            let mut x = 0u64;
            let mut ok = true;
            while u > r {
                u -= r;
                x += 1;
                if x > self.n {
                    // Numerical leakage past the support: resample.
                    ok = false;
                    break;
                }
                r *= self.a / (x as f64) - self.s;
            }
            if ok {
                return if self.flipped { self.n - x } else { x };
            }
        }
    }
}

impl Btpe {
    fn setup(n: u64, r: f64, flipped: bool) -> Self {
        let nf = n as f64;
        let q = 1.0 - r;
        let npq = nf * r * q;
        let f_m = nf * r + r;
        let m = f_m.floor() as i64;
        // Half-width of the triangular hat region.
        let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
        let x_m = m as f64 + 0.5;
        let x_l = x_m - p1;
        let x_r = x_m + p1;
        let c = 0.134 + 20.5 / (15.3 + m as f64);
        let lambda = |a: f64| a * (1.0 + 0.5 * a);
        let lambda_l = lambda((f_m - x_l) / (f_m - x_l * r));
        let lambda_r = lambda((x_r - f_m) / (x_r * q));
        let p2 = p1 * (1.0 + 2.0 * c);
        let p3 = p2 + c / lambda_l;
        let p4 = p3 + c / lambda_r;
        Self {
            n,
            r,
            q,
            npq,
            f_m,
            m,
            p1,
            x_m,
            x_l,
            x_r,
            c,
            lambda_l,
            lambda_r,
            p2,
            p3,
            p4,
            flipped,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        let n = self.n as f64;
        let s = self.r / self.q;
        let a = (n + 1.0) * s;
        // Stirling series correction used in the final acceptance test
        // (step 5.3 of the BTPE paper).
        fn stirling(x: f64) -> f64 {
            let x2 = x * x;
            (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) / x / 166_320.0
        }

        let y: i64 = loop {
            // Step 1: region selection.
            let u = rng.next_f64() * self.p4;
            let mut v = rng.next_f64_open();
            let y: i64;
            if u <= self.p1 {
                // Triangular region: immediate acceptance.
                break (self.x_m - self.p1 * v + u).floor() as i64;
            } else if u <= self.p2 {
                // Parallelogram region.
                let x = self.x_l + (u - self.p1) / self.c;
                v = v * self.c + 1.0 - (x - self.x_m).abs() / self.p1;
                if v > 1.0 {
                    continue;
                }
                y = x.floor() as i64;
            } else if u <= self.p3 {
                // Left exponential tail.
                y = (self.x_l + v.ln() / self.lambda_l).floor() as i64;
                if y < 0 {
                    continue;
                }
                v *= (u - self.p2) * self.lambda_l;
            } else {
                // Right exponential tail.
                y = (self.x_r - v.ln() / self.lambda_r).floor() as i64;
                if y > self.n as i64 {
                    continue;
                }
                v *= (u - self.p3) * self.lambda_r;
            }

            // Step 5.0: acceptance/rejection comparison of v against the
            // (scaled) pmf at y.
            let k = (y - self.m).unsigned_abs();
            if k <= 20 || k as f64 >= self.npq / 2.0 - 1.0 {
                // Step 5.1: evaluate f(y)/f(m) by recursion.
                let mut f = 1.0;
                if self.m < y {
                    for i in (self.m + 1)..=y {
                        f *= a / (i as f64) - s;
                    }
                } else if self.m > y {
                    for i in (y + 1)..=self.m {
                        f /= a / (i as f64) - s;
                    }
                }
                if v <= f {
                    break y;
                }
                continue;
            }

            // Step 5.2: squeeze around the Gaussian approximation.
            let kf = k as f64;
            let rho = (kf / self.npq) * ((kf * (kf / 3.0 + 0.625) + 1.0 / 6.0) / self.npq + 0.5);
            let t = -0.5 * kf * kf / self.npq;
            let alpha = v.ln();
            if alpha < t - rho {
                break y;
            }
            if alpha > t + rho {
                continue;
            }

            // Step 5.3: exact final comparison with Stirling corrections.
            let x1 = (y + 1) as f64;
            let f1 = (self.m + 1) as f64;
            let z = (self.n as i64 + 1 - self.m) as f64;
            let w = (self.n as i64 - y + 1) as f64;
            let bound = self.x_m * (f1 / x1).ln()
                + (n - self.m as f64 + 0.5) * (z / w).ln()
                + ((y - self.m) as f64) * (w * self.r / (x1 * self.q)).ln()
                + stirling(f1)
                + stirling(z)
                + stirling(x1)
                + stirling(w);
            if alpha <= bound {
                break y;
            }
        };

        debug_assert!(y >= 0 && y as u64 <= self.n);
        let y = y.clamp(0, self.n as i64) as u64;
        if self.flipped {
            self.n - y
        } else {
            y
        }
    }

    /// `f_m` is carried only for debugging/assertions.
    #[allow(dead_code)]
    fn mode_center(&self) -> f64 {
        self.f_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_p() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.5).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn constants() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(17, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(17, 1.0).unwrap().sample(&mut rng), 17);
    }

    #[test]
    fn support_is_respected() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for &(n, p) in &[(5u64, 0.3), (100, 0.5), (10_000, 0.001), (1 << 30, 1e-8)] {
            let d = Binomial::new(n, p).unwrap();
            for _ in 0..2_000 {
                assert!(d.sample(&mut rng) <= n);
            }
        }
    }

    /// Moment check across the BINV/BTPE boundary and the flip logic.
    #[test]
    fn mean_and_variance_match_theory() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let cases: &[(u64, f64)] = &[
            (20, 0.25),      // BINV
            (1_000, 0.002),  // BINV, large n
            (1_000, 0.5),    // BTPE
            (1_000, 0.9),    // BTPE flipped
            (1 << 20, 1e-4), // BTPE, npq ≈ 105
            (50, 0.4),       // BTPE boundary-ish
        ];
        for &(n, p) in cases {
            let d = Binomial::new(n, p).unwrap();
            let trials = 60_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..trials {
                let x = d.sample(&mut rng) as f64;
                sum += x;
                sumsq += x * x;
            }
            let tf = f64::from(trials);
            let mean = sum / tf;
            let var = sumsq / tf - mean * mean;
            let mean_sigma = (d.variance() / tf).sqrt();
            assert!(
                (mean - d.mean()).abs() < 6.0 * mean_sigma.max(1e-9),
                "n={n} p={p}: mean {mean} vs {}",
                d.mean()
            );
            // Variance of the sample variance ~ 2 var^2 / trials for
            // near-Gaussian data; allow a wide band.
            assert!(
                (var - d.variance()).abs() < 0.1 * d.variance().max(1.0),
                "n={n} p={p}: var {var} vs {}",
                d.variance()
            );
        }
    }

    /// Chi-square goodness-of-fit against the exact pmf for a case in each
    /// regime. This is the strongest correctness check for BTPE.
    #[test]
    fn chi_square_goodness_of_fit() {
        fn exact_pmf(n: u64, p: f64, k: u64) -> f64 {
            // log C(n,k) + k ln p + (n-k) ln q via lgamma-free product —
            // n is small enough here to do it with a running product in
            // log space.
            let mut logp = 0.0f64;
            for i in 0..k {
                logp += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
            }
            logp += k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
            logp.exp()
        }

        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for &(n, p) in &[(30u64, 0.2), (200, 0.3), (400, 0.5)] {
            let d = Binomial::new(n, p).unwrap();
            let trials = 100_000usize;
            let mut counts = vec![0u64; (n + 1) as usize];
            for _ in 0..trials {
                counts[d.sample(&mut rng) as usize] += 1;
            }
            // Pool bins with expected count < 8 into tails.
            let expected: Vec<f64> = (0..=n)
                .map(|k| exact_pmf(n, p, k) * trials as f64)
                .collect();
            let mut chi2 = 0.0;
            let mut dof: i64 = -1;
            let mut pool_obs = 0.0;
            let mut pool_exp = 0.0;
            for k in 0..=n as usize {
                pool_obs += counts[k] as f64;
                pool_exp += expected[k];
                if pool_exp >= 8.0 {
                    chi2 += (pool_obs - pool_exp).powi(2) / pool_exp;
                    dof += 1;
                    pool_obs = 0.0;
                    pool_exp = 0.0;
                }
            }
            if pool_exp > 0.0 {
                chi2 += (pool_obs - pool_exp).powi(2) / pool_exp;
                dof += 1;
            }
            // For dof k, chi2 has mean k, sd sqrt(2k); accept within
            // mean + 5 sd — loose enough to be deterministic with our
            // fixed seed, tight enough to catch real pmf distortions.
            let dof = dof.max(1) as f64;
            assert!(
                chi2 < dof + 5.0 * (2.0 * dof).sqrt(),
                "n={n} p={p}: chi2={chi2:.1} dof={dof}"
            );
        }
    }

    #[test]
    fn flipped_symmetry() {
        // Bin(n, p) and n - Bin(n, 1-p) must have identical distributions;
        // spot-check the means closely.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let n = 500u64;
        let a = Binomial::new(n, 0.7).unwrap();
        let trials = 50_000;
        let mean: f64 =
            (0..trials).map(|_| a.sample(&mut rng) as f64).sum::<f64>() / f64::from(trials);
        assert!((mean - 350.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn sample_n_one_shot_matches_planned_sampler() {
        // Identical RNG stream => identical draws: sample_n is exactly
        // new().sample() without the retained plan.
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(9);
        let d = Binomial::new(5_000, 0.37).unwrap();
        for _ in 0..200 {
            assert_eq!(
                Binomial::sample_n(5_000, 0.37, &mut a).unwrap(),
                d.sample(&mut b)
            );
        }
        assert!(Binomial::sample_n(10, 1.5, &mut a).is_err());
    }

    #[test]
    fn sub_ulp_p_keeps_the_pmf_alive() {
        // p = 2^-55 < 2^-53: the rounded q = 1.0 - p collapses to 1.0, so
        // q^n must come from ln_1p(-p) or BINV degenerates to constant 0.
        // n = 2^57 gives mean 4 (BINV regime, n·p < 10).
        let p = (0.5f64).powi(55);
        let d = Binomial::new(1u64 << 57, p).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let trials = 20_000;
        let mean: f64 =
            (0..trials).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / f64::from(trials);
        // sigma of the sample mean = sqrt(4/trials) ≈ 0.014.
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn huge_n_tiny_p_is_fast_and_sane() {
        // n = 2^40, p = 2^-30: mean 1024. Must not iterate O(n).
        let d = Binomial::new(1 << 40, (0.5f64).powi(30)).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let trials = 20_000;
        let mean: f64 =
            (0..trials).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / f64::from(trials);
        assert!((mean - 1024.0).abs() < 5.0, "mean={mean}");
    }
}
