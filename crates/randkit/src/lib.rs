//! # `ac-randkit` — randomness substrate for approximate counting
//!
//! The counters studied in Nelson & Yu, *Optimal Bounds for Approximate
//! Counting* (PODS 2022), consume streams of random bits. Remark 2.2 of the
//! paper even accounts for the memory needed to *generate* a
//! `Bernoulli(2^-t)` coin by flipping `t` fair coins and AND-ing them. This
//! crate provides that randomness substrate from scratch:
//!
//! * [`RandomSource`] — the object-safe generator trait used across the
//!   workspace (all algorithms are generic over it; experiments stay
//!   bit-for-bit reproducible across platforms).
//! * [`SplitMix64`] — seeding / stream-splitting generator.
//! * [`Xoshiro256PlusPlus`] — the main generator.
//! * Distributions:
//!   [`Bernoulli`], [`BernoulliPow2`] (exact probability `2^-t`),
//!   [`Geometric`] (counter fast-forwarding), [`Binomial`]
//!   (BINV + BTPE, used for workload synthesis and epoch skipping), and
//!   [`Zipf`] (heavy-tailed key popularity for the "many counters"
//!   experiments).
//! * [`BuildSplitMix64`] — a deterministic, single-round `mix64` hasher
//!   for integer-keyed hash maps (the engine's key→slot indexes), where
//!   SipHash's flood resistance buys nothing and costs the hot path.
//!
//! ## Why not the `rand` crate?
//!
//! Three reasons, documented in `DESIGN.md`:
//! 1. the paper's space accounting requires an explicit `2^-t` coin model;
//! 2. experiment seeds must be reproducible bit-for-bit and survive
//!    dependency upgrades;
//! 3. the library proper stays dependency-free (dev-dependencies still pull
//!    `proptest` for property tests).
//!
//! ## Example
//!
//! ```
//! use ac_randkit::{RandomSource, Xoshiro256PlusPlus, Bernoulli};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let coin = Bernoulli::new(0.25).unwrap();
//! let heads = (0..10_000).filter(|_| coin.sample(&mut rng)).count();
//! assert!((heads as f64 - 2_500.0).abs() < 250.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bernoulli;
mod binomial;
mod error;
mod geometric;
mod hasher;
mod source;
mod splitmix;
mod uniform;
mod xoshiro;
mod zipf;

pub use bernoulli::{Bernoulli, BernoulliPow2};
pub use binomial::Binomial;
pub use error::DistError;
pub use geometric::{Geometric, GeometricLadder};
pub use hasher::{BuildSplitMix64, SplitMix64Hasher};
pub use source::{CountingSource, RandomSource, SequenceSource};
pub use splitmix::{mix64, SplitMix64};
pub use uniform::{UniformF64, UniformU64};
pub use xoshiro::Xoshiro256PlusPlus;
pub use zipf::{AliasTable, Zipf};

/// Derives a family of independent, deterministic per-trial seeds from a
/// master seed.
///
/// Trial `i` of an experiment seeded with `master` uses
/// `trial_seed(master, i)`. The derivation runs the SplitMix64 output
/// function over `(master, index)` so that nearby indices yield unrelated
/// streams.
///
/// ```
/// use ac_randkit::trial_seed;
/// assert_ne!(trial_seed(7, 0), trial_seed(7, 1));
/// assert_eq!(trial_seed(7, 3), trial_seed(7, 3));
/// ```
#[must_use]
pub fn trial_seed(master: u64, index: u64) -> u64 {
    // Two rounds of the SplitMix64 finalizer over a mixed word; this is a
    // bijective scramble of (master + f(index)) so distinct indices cannot
    // collide for a fixed master.
    let mut z = master ^ splitmix::mix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15));
    z = splitmix::mix64(z);
    splitmix::mix64(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_distinct_for_small_indices() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(trial_seed(123, i)), "collision at index {i}");
        }
    }

    #[test]
    fn trial_seeds_differ_across_masters() {
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
    }
}
