//! Geometric distribution on `{1, 2, 3, …}` — the engine of counter
//! fast-forwarding.
//!
//! Section 2.2 of the paper analyzes `Morris(a)` through the variables
//! `Z_i` — the number of increments spent at level `X = i` before moving to
//! `i + 1` — which are geometric with parameter `p_i = (1+a)^{-i}`.
//! Simulating a Morris counter for `N` increments therefore reduces to
//! drawing `X_final = O(log N / a)` geometric variates instead of `N`
//! Bernoulli coins. [`Geometric`] provides exact inversion sampling for
//! that purpose.

use crate::{DistError, RandomSource};

/// Geometric distribution: `P[G = l] = (1-p)^{l-1} · p` for `l ≥ 1`.
///
/// `G` models the number of Bernoulli(`p`) trials up to and including the
/// first success. Sampling uses the inversion method
/// `G = 1 + ⌊ln(U) / ln(1-p)⌋` with `U` uniform on `(0, 1]`, which is exact
/// at f64 resolution and O(1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    /// Precomputed `ln(1-p)` (negative); `None` when `p == 1`.
    ln_q: Option<f64>,
}

impl Geometric {
    /// Creates the distribution with success probability `p ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::ProbabilityOutOfRange`] unless
    /// `0 < p ≤ 1`.
    pub fn new(p: f64) -> Result<Self, DistError> {
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            return Err(DistError::ProbabilityOutOfRange {
                param: "p",
                required: "(0, 1]",
            });
        }
        let ln_q = if p == 1.0 {
            None
        } else {
            // ln(1 - p) computed stably even for tiny p.
            Some((-p).ln_1p())
        };
        Ok(Self { p, ln_q })
    }

    /// The success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// The variance `(1-p)/p²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }

    /// Draws the number of trials up to and including the first success.
    ///
    /// Saturates at `u64::MAX` (relevant only for astronomically small `p`
    /// combined with an astronomically unlucky uniform draw).
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.ln_q {
            None => 1, // p == 1: first trial always succeeds
            Some(ln_q) => {
                let u = rng.next_f64_open(); // (0, 1] keeps ln finite
                let g = (u.ln() / ln_q).floor();
                if g >= (u64::MAX - 1) as f64 {
                    u64::MAX
                } else {
                    1 + g as u64
                }
            }
        }
    }

    /// Draws a geometric variate, but reports only whether the first
    /// success happens within `budget` trials and, if so, after how many.
    ///
    /// This is the primitive used by fast-forwarding: "given `budget`
    /// remaining increments, does the counter level advance, and how many
    /// increments did that consume?" Returns `Some(g)` with `g ≤ budget`
    /// when the success occurs within the budget, `None` otherwise.
    /// Exactly equivalent to comparing [`Geometric::sample`] with `budget`,
    /// just more legible at call sites.
    #[inline]
    pub fn sample_within<R: RandomSource + ?Sized>(&self, budget: u64, rng: &mut R) -> Option<u64> {
        let g = self.sample(rng);
        (g <= budget).then_some(g)
    }
}

/// Bulk sampler over a *ladder* of geometric variables with geometrically
/// decaying success probabilities — the level-skipping path for
/// Morris-family fast-forwarding at tiny bases.
///
/// The setting: independent trials at rung `i` succeed with probability
/// `p_i = b^{-i}` for a base `b = e^{ln_b} > 1`, and the time spent on rung
/// `i` is `Z_i ~ Geometric(p_i)`. When `ln_b` is tiny (Morris bases
/// `a ≲ 1e-4`), `p_i ≈ 1` across thousands of rungs, so almost every
/// `Z_i = 1` and drawing each of them individually wastes one RNG call per
/// rung. [`GeometricLadder::sample_run`] instead samples
///
/// ```text
/// M = min { m ≥ 0 : Z_{x+m} ≥ 2 }
/// ```
///
/// — the number of consecutive one-trial rungs starting at `x` — in `O(1)`
/// via the closed form `P(M > m) = ∏_{j≤m} b^{-(x+j)} = b^{-S}` with
/// `S = (m+1)x + m(m+1)/2`: inverting one `Exp(1)` draw against the
/// quadratic `S(m)` yields `M` exactly. Crucially the sample is *only*
/// conditioned on rungs `x .. x+M`, so a caller that climbs fewer than `M`
/// rungs (budget exhausted) can later resample the untouched rungs fresh
/// without bias, and the rung at `x+M` satisfies
/// `Z | Z ≥ 2 = 1 + Geometric(p)` by memorylessness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricLadder {
    /// `ln b > 0`.
    ln_b: f64,
}

impl GeometricLadder {
    /// Creates the ladder for success probabilities `p_i = e^{-ln_b · i}`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::ProbabilityOutOfRange`] unless `ln_b` is finite
    /// and positive (a flat or growing ladder has no one-trial runs to
    /// skip).
    pub fn new(ln_b: f64) -> Result<Self, DistError> {
        if !(ln_b.is_finite() && ln_b > 0.0) {
            return Err(DistError::ProbabilityOutOfRange {
                param: "ln_b",
                required: "(0, inf)",
            });
        }
        Ok(Self { ln_b })
    }

    /// The log-base `ln b`.
    #[must_use]
    pub fn ln_b(&self) -> f64 {
        self.ln_b
    }

    /// Samples `M = min{m ≥ 0 : Z_{x+m} ≥ 2}` — how many consecutive rungs
    /// starting at `x` are climbed with exactly one trial each — with one
    /// `Exp(1)` draw and a square root.
    ///
    /// At `x = 0` the rung-0 trial always succeeds (`p_0 = 1`), so the
    /// result is at least 1 there.
    #[inline]
    pub fn sample_run<R: RandomSource + ?Sized>(&self, x: u64, rng: &mut R) -> u64 {
        // P(M > m) = exp(-S(m+1)·ln_b) with S(m) = m·x + m(m-1)/2, so
        // M = max{m : S(m)·ln_b ≤ E} for E ~ Exp(1).
        let e = -rng.next_f64_open().ln();
        let r = e / self.ln_b;
        let xf = x as f64;
        // Largest m with m²/2 + m(x − 1/2) ≤ r, by the quadratic formula…
        let disc = (xf - 0.5).mul_add(xf - 0.5, 2.0 * r);
        let mut m = (0.5 - xf + disc.sqrt()).floor().max(0.0) as u64;
        // …then nudged onto the exact integer boundary (f64 rounding can
        // miss by one near the root).
        let s = |m: u64| {
            let mf = m as f64;
            mf * xf + mf * (mf - 1.0) * 0.5
        };
        while m > 0 && s(m) > r {
            m -= 1;
        }
        while s(m + 1) <= r {
            m += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_p() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(-0.5).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
    }

    #[test]
    fn p_one_always_one() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn support_starts_at_one() {
        let g = Geometric::new(0.9).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn sample_mean_matches_theory() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for &p in &[0.5, 0.1, 0.01] {
            let g = Geometric::new(p).unwrap();
            let n = 100_000u32;
            let sum: f64 = (0..n).map(|_| g.sample(&mut rng) as f64).sum();
            let mean = sum / f64::from(n);
            let sigma = (g.variance() / f64::from(n)).sqrt();
            assert!(
                (mean - g.mean()).abs() < 6.0 * sigma,
                "p={p}: mean={mean}, expected={}",
                g.mean()
            );
        }
    }

    #[test]
    fn pmf_head_probabilities_match() {
        // P[G = 1] should be p; estimate empirically.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let p = 0.3;
        let g = Geometric::new(p).unwrap();
        let n = 200_000;
        let ones = (0..n).filter(|_| g.sample(&mut rng) == 1).count();
        let freq = ones as f64 / f64::from(n);
        assert!((freq - p).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn tiny_p_gives_large_values_without_overflow() {
        let g = Geometric::new(1e-12).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let x = g.sample(&mut rng);
        assert!(x >= 1);
        // Mean is 1e12; a draw should be in a plausibly wide band.
        assert!(x < u64::MAX);
    }

    #[test]
    fn ladder_rejects_bad_base() {
        assert!(GeometricLadder::new(0.0).is_err());
        assert!(GeometricLadder::new(-1.0).is_err());
        assert!(GeometricLadder::new(f64::NAN).is_err());
        assert!(GeometricLadder::new(f64::INFINITY).is_err());
        assert!(GeometricLadder::new(1e-9).is_ok());
    }

    #[test]
    fn ladder_run_from_rung_zero_is_at_least_one() {
        // p_0 = 1: the first rung always takes exactly one trial.
        let ladder = GeometricLadder::new(0.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(ladder.sample_run(0, &mut rng) >= 1);
        }
    }

    #[test]
    fn ladder_run_matches_per_rung_simulation() {
        // Simulate M directly (draw Z_i per rung until one is >= 2) and
        // compare the empirical distribution against sample_run's.
        let ln_b = 0.02f64; // a ~ 2 %: runs of a few dozen rungs
        let x0 = 5u64;
        let ladder = GeometricLadder::new(ln_b).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let trials = 40_000;
        let mut direct_sum = 0.0f64;
        let mut skip_sum = 0.0f64;
        let mut direct_sq = 0.0f64;
        for _ in 0..trials {
            let mut m = 0u64;
            loop {
                let p = (-((x0 + m) as f64) * ln_b).exp();
                let z = Geometric::new(p).unwrap().sample(&mut rng);
                if z >= 2 {
                    break;
                }
                m += 1;
            }
            direct_sum += m as f64;
            direct_sq += (m * m) as f64;
            skip_sum += ladder.sample_run(x0, &mut rng) as f64;
        }
        let n = f64::from(trials);
        let (mean_d, mean_s) = (direct_sum / n, skip_sum / n);
        let var_d = direct_sq / n - mean_d * mean_d;
        let sigma = (2.0 * var_d / n).sqrt();
        assert!(
            (mean_d - mean_s).abs() < 6.0 * sigma,
            "direct mean {mean_d} vs skip mean {mean_s} (sigma {sigma})"
        );
    }

    #[test]
    fn ladder_run_tail_probabilities_are_exact() {
        // P(M >= m) = b^-(m·x + m(m-1)/2) in closed form; check the
        // empirical tail at a few points.
        let ln_b = 0.05f64;
        let x = 3u64;
        let ladder = GeometricLadder::new(ln_b).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let trials = 60_000u32;
        let samples: Vec<u64> = (0..trials)
            .map(|_| ladder.sample_run(x, &mut rng))
            .collect();
        for m in [1u64, 3, 6] {
            let s = (m * x + m * (m - 1) / 2) as f64;
            let expect = (-s * ln_b).exp();
            let got = samples.iter().filter(|&&v| v >= m).count() as f64 / f64::from(trials);
            let sigma = (expect * (1.0 - expect) / f64::from(trials)).sqrt();
            assert!(
                (got - expect).abs() < 6.0 * sigma,
                "m={m}: empirical {got} vs exact {expect}"
            );
        }
    }

    #[test]
    fn ladder_tiny_base_runs_are_long() {
        // ln_b = 1e-6 near rung 0: failures are ~one-in-a-million per
        // rung, so runs should regularly climb thousands of rungs.
        let ladder = GeometricLadder::new(1e-6).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mean: f64 = (0..200)
            .map(|_| ladder.sample_run(0, &mut rng) as f64)
            .sum::<f64>()
            / 200.0;
        assert!(mean > 500.0, "mean run {mean} suspiciously short");
    }

    #[test]
    fn sample_within_agrees_with_budget_comparison() {
        let g = Geometric::new(0.05).unwrap();
        let mut a = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(6);
        for _ in 0..10_000 {
            let direct = g.sample(&mut a);
            let within = g.sample_within(20, &mut b);
            assert_eq!(within, (direct <= 20).then_some(direct));
        }
    }
}
