//! Geometric distribution on `{1, 2, 3, …}` — the engine of counter
//! fast-forwarding.
//!
//! Section 2.2 of the paper analyzes `Morris(a)` through the variables
//! `Z_i` — the number of increments spent at level `X = i` before moving to
//! `i + 1` — which are geometric with parameter `p_i = (1+a)^{-i}`.
//! Simulating a Morris counter for `N` increments therefore reduces to
//! drawing `X_final = O(log N / a)` geometric variates instead of `N`
//! Bernoulli coins. [`Geometric`] provides exact inversion sampling for
//! that purpose.

use crate::{DistError, RandomSource};

/// Geometric distribution: `P[G = l] = (1-p)^{l-1} · p` for `l ≥ 1`.
///
/// `G` models the number of Bernoulli(`p`) trials up to and including the
/// first success. Sampling uses the inversion method
/// `G = 1 + ⌊ln(U) / ln(1-p)⌋` with `U` uniform on `(0, 1]`, which is exact
/// at f64 resolution and O(1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    /// Precomputed `ln(1-p)` (negative); `None` when `p == 1`.
    ln_q: Option<f64>,
}

impl Geometric {
    /// Creates the distribution with success probability `p ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::ProbabilityOutOfRange`] unless
    /// `0 < p ≤ 1`.
    pub fn new(p: f64) -> Result<Self, DistError> {
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            return Err(DistError::ProbabilityOutOfRange {
                param: "p",
                required: "(0, 1]",
            });
        }
        let ln_q = if p == 1.0 {
            None
        } else {
            // ln(1 - p) computed stably even for tiny p.
            Some((-p).ln_1p())
        };
        Ok(Self { p, ln_q })
    }

    /// The success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// The variance `(1-p)/p²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }

    /// Draws the number of trials up to and including the first success.
    ///
    /// Saturates at `u64::MAX` (relevant only for astronomically small `p`
    /// combined with an astronomically unlucky uniform draw).
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.ln_q {
            None => 1, // p == 1: first trial always succeeds
            Some(ln_q) => {
                let u = rng.next_f64_open(); // (0, 1] keeps ln finite
                let g = (u.ln() / ln_q).floor();
                if g >= (u64::MAX - 1) as f64 {
                    u64::MAX
                } else {
                    1 + g as u64
                }
            }
        }
    }

    /// Draws a geometric variate, but reports only whether the first
    /// success happens within `budget` trials and, if so, after how many.
    ///
    /// This is the primitive used by fast-forwarding: "given `budget`
    /// remaining increments, does the counter level advance, and how many
    /// increments did that consume?" Returns `Some(g)` with `g ≤ budget`
    /// when the success occurs within the budget, `None` otherwise.
    /// Exactly equivalent to comparing [`Geometric::sample`] with `budget`,
    /// just more legible at call sites.
    #[inline]
    pub fn sample_within<R: RandomSource + ?Sized>(&self, budget: u64, rng: &mut R) -> Option<u64> {
        let g = self.sample(rng);
        (g <= budget).then_some(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_p() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(-0.5).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
    }

    #[test]
    fn p_one_always_one() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn support_starts_at_one() {
        let g = Geometric::new(0.9).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn sample_mean_matches_theory() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for &p in &[0.5, 0.1, 0.01] {
            let g = Geometric::new(p).unwrap();
            let n = 100_000u32;
            let sum: f64 = (0..n).map(|_| g.sample(&mut rng) as f64).sum();
            let mean = sum / f64::from(n);
            let sigma = (g.variance() / f64::from(n)).sqrt();
            assert!(
                (mean - g.mean()).abs() < 6.0 * sigma,
                "p={p}: mean={mean}, expected={}",
                g.mean()
            );
        }
    }

    #[test]
    fn pmf_head_probabilities_match() {
        // P[G = 1] should be p; estimate empirically.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let p = 0.3;
        let g = Geometric::new(p).unwrap();
        let n = 200_000;
        let ones = (0..n).filter(|_| g.sample(&mut rng) == 1).count();
        let freq = ones as f64 / f64::from(n);
        assert!((freq - p).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn tiny_p_gives_large_values_without_overflow() {
        let g = Geometric::new(1e-12).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let x = g.sample(&mut rng);
        assert!(x >= 1);
        // Mean is 1e12; a draw should be in a plausibly wide band.
        assert!(x < u64::MAX);
    }

    #[test]
    fn sample_within_agrees_with_budget_comparison() {
        let g = Geometric::new(0.05).unwrap();
        let mut a = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(6);
        for _ in 0..10_000 {
            let direct = g.sample(&mut a);
            let within = g.sample_within(20, &mut b);
            assert_eq!(within, (direct <= 20).then_some(direct));
        }
    }
}
