//! Bernoulli coins, including the exact `2^-t` coin of Remark 2.2.

use crate::{Binomial, DistError, RandomSource};

/// A Bernoulli coin with success probability `p`.
///
/// Sampling draws one `f64` and compares; this is the standard method and
/// is exact up to the 53-bit resolution of [`RandomSource::next_f64`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a coin with success probability `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::ProbabilityOutOfRange`] if `p` is not a finite
    /// number in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, DistError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(DistError::ProbabilityOutOfRange {
                param: "p",
                required: "[0, 1]",
            });
        }
        Ok(Self { p })
    }

    /// The success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Flips the coin.
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> bool {
        // `next_f64` is in [0, 1): comparing with `<` gives probability
        // exactly p at f64 resolution, and p == 0 can never succeed while
        // p == 1 always does.
        rng.next_f64() < self.p
    }
}

/// A Bernoulli coin with success probability exactly `2^-t`.
///
/// This realizes the coin model of the paper's Remark 2.2: "we can generate
/// a Bernoulli(α) random variable by flipping a fair coin `t` times and
/// returning 1 iff all flips were heads". Implementation-wise we inspect
/// `t` fresh fair bits per flip (batched 64 at a time), which is *exactly*
/// equivalent in distribution and consumes `⌈t/64⌉` words.
///
/// `t = 0` is the always-true coin (probability `2^0 = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BernoulliPow2 {
    t: u32,
}

impl BernoulliPow2 {
    /// Creates the coin with success probability `2^-t`.
    ///
    /// Any `t` is permitted; for `t ≥ 64` several words are consumed per
    /// flip. (The Nelson–Yu counter only ever needs
    /// `t = O(log(ε³T)) ≤ 64` in practice, but the type does not assume
    /// that.)
    #[must_use]
    pub fn new(t: u32) -> Self {
        Self { t }
    }

    /// The exponent `t`; the success probability is `2^-t`.
    #[must_use]
    pub fn t(&self) -> u32 {
        self.t
    }

    /// The success probability `2^-t` as an `f64` (0 if `t > 1074`).
    #[must_use]
    pub fn p(&self) -> f64 {
        (-f64::from(self.t)).exp2()
    }

    /// Flips the coin: true with probability exactly `2^-t`.
    #[inline]
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> bool {
        let mut remaining = self.t;
        // Consume full 64-bit words of fair coins; every bit must be
        // "heads" (0) for success.
        while remaining >= 64 {
            if rng.next_u64() != 0 {
                return false;
            }
            remaining -= 64;
        }
        if remaining == 0 {
            return true;
        }
        // Check the low `remaining` bits of one more word.
        let mask = (1u64 << remaining) - 1;
        rng.next_u64() & mask == 0
    }

    /// Flips the coin `n` times and returns the number of successes, as a
    /// single `Binomial(n, 2^-t)` draw.
    ///
    /// This is the batched form used by counter fast-forwarding: instead of
    /// `n·t` fair bits it consumes `O(1)` expected words, and because
    /// `2^-t` is exactly representable as an `f64` for every `t ≤ 1074`
    /// the success count has *exactly* the same distribution as `n`
    /// independent [`BernoulliPow2::sample`] calls. For `t > 1074` (where
    /// even an `f64` cannot hold `2^-t`) the batch falls back to the
    /// bit-exact per-flip coin; no counter schedule gets anywhere near
    /// that regime.
    pub fn sample_n<R: RandomSource + ?Sized>(&self, n: u64, rng: &mut R) -> u64 {
        if self.t == 0 {
            return n;
        }
        if self.t <= 1074 {
            return Binomial::sample_n(n, self.p(), rng).expect("2^-t is a valid probability");
        }
        (0..n).filter(|_| self.sample(rng)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSource, SequenceSource, Xoshiro256PlusPlus};

    #[test]
    fn bernoulli_rejects_bad_p() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
        assert!(Bernoulli::new(f64::INFINITY).is_err());
    }

    #[test]
    fn bernoulli_extremes_are_deterministic() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let never = Bernoulli::new(0.0).unwrap();
        let always = Bernoulli::new(1.0).unwrap();
        for _ in 0..1_000 {
            assert!(!never.sample(&mut rng));
            assert!(always.sample(&mut rng));
        }
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for &p in &[0.1, 0.5, 0.9] {
            let coin = Bernoulli::new(p).unwrap();
            let n = 200_000;
            let hits = (0..n).filter(|_| coin.sample(&mut rng)).count();
            let freq = hits as f64 / f64::from(n);
            // 5 sigma tolerance: sigma = sqrt(p(1-p)/n) < 0.0012
            assert!((freq - p).abs() < 0.006, "p={p}, freq={freq}");
        }
    }

    #[test]
    fn pow2_t0_always_true_consumes_nothing() {
        let mut src = CountingSource::new(SequenceSource::new(vec![]));
        let coin = BernoulliPow2::new(0);
        assert!(coin.sample(&mut src));
        assert_eq!(src.words_drawn(), 0);
    }

    #[test]
    fn pow2_t1_is_fair() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let coin = BernoulliPow2::new(1);
        let n = 100_000;
        let hits = (0..n).filter(|_| coin.sample(&mut rng)).count();
        let freq = hits as f64 / f64::from(n);
        assert!((freq - 0.5).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn pow2_small_t_frequency() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        for t in [2u32, 4, 6] {
            let coin = BernoulliPow2::new(t);
            let p = coin.p();
            let n = 400_000;
            let hits = (0..n).filter(|_| coin.sample(&mut rng)).count();
            let freq = hits as f64 / f64::from(n);
            let sigma = (p * (1.0 - p) / f64::from(n)).sqrt();
            assert!((freq - p).abs() < 6.0 * sigma, "t={t}: p={p}, freq={freq}");
        }
    }

    #[test]
    fn pow2_uses_scripted_bits_exactly() {
        // t = 3 inspects the low 3 bits of one word.
        let coin = BernoulliPow2::new(3);
        let mut src = SequenceSource::new(vec![0b000, 0b100_000, 0b001]);
        assert!(coin.sample(&mut src)); // low bits 000 -> heads^3
        assert!(coin.sample(&mut src)); // low bits of 0b100000 are 000
        assert!(!coin.sample(&mut src)); // low bits 001 -> a tail
    }

    #[test]
    fn pow2_large_t_consumes_multiple_words() {
        let coin = BernoulliPow2::new(130); // 64 + 64 + 2 bits
        let mut src = CountingSource::new(SequenceSource::new(vec![0, 0, 0]));
        assert!(coin.sample(&mut src));
        assert_eq!(src.words_drawn(), 3);

        // Early exit after first non-zero word.
        let mut src = CountingSource::new(SequenceSource::new(vec![5]));
        assert!(!coin.sample(&mut src));
        assert_eq!(src.words_drawn(), 1);
    }

    #[test]
    fn pow2_p_matches_exp2() {
        assert_eq!(BernoulliPow2::new(0).p(), 1.0);
        assert_eq!(BernoulliPow2::new(1).p(), 0.5);
        assert_eq!(BernoulliPow2::new(10).p(), 1.0 / 1024.0);
    }

    #[test]
    fn batched_t0_is_deterministic_and_free() {
        let mut src = CountingSource::new(SequenceSource::new(vec![]));
        assert_eq!(BernoulliPow2::new(0).sample_n(12_345, &mut src), 12_345);
        assert_eq!(src.words_drawn(), 0);
    }

    #[test]
    fn batched_matches_per_flip_distribution() {
        // Same (t, n): the batched success count and the sum of individual
        // flips must agree in mean to binomial accuracy.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for t in [1u32, 3, 7] {
            let coin = BernoulliPow2::new(t);
            let n = 1u64 << 16;
            let trials = 2_000;
            let mut batched = 0.0;
            let mut looped = 0.0;
            for _ in 0..trials {
                batched += coin.sample_n(n, &mut rng) as f64;
                looped += (0..n).filter(|_| coin.sample(&mut rng)).count() as f64;
            }
            let mean_b = batched / f64::from(trials);
            let mean_l = looped / f64::from(trials);
            let p = coin.p();
            let sigma = (n as f64 * p * (1.0 - p) / f64::from(trials)).sqrt();
            assert!((mean_b - n as f64 * p).abs() < 6.0 * sigma, "t={t}");
            assert!((mean_b - mean_l).abs() < 9.0 * sigma, "t={t}");
        }
    }

    #[test]
    fn batched_huge_t_returns_zero_like() {
        // t far beyond f64 resolution: per-flip fallback, astronomically
        // unlikely to succeed even once.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        assert_eq!(BernoulliPow2::new(2_000).sample_n(100, &mut rng), 0);
    }
}
