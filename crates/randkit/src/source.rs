//! The [`RandomSource`] trait and testing sources.

/// A deterministic, seedable source of 64-bit random words.
///
/// Every algorithm in this workspace draws randomness through this trait so
/// that experiments are reproducible and so tests can substitute scripted
/// sources. The trait is object safe: counters hold `&mut dyn RandomSource`
/// during an increment, which keeps the counter types themselves free of
/// generic parameters (important for [`CounterArray`]-style collections).
///
/// [`CounterArray`]: https://docs.rs/ac-streams
pub trait RandomSource {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // Take the high half: for xoshiro-family generators the upper bits
        // have the best equidistribution properties.
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random `f64` in `[0, 1)` with 53 bits of
    /// precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled by 2^-53: the canonical open-interval trick.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly random `f64` in the *open* interval `(0, 1]`.
    ///
    /// Useful for inversion sampling where `ln(u)` must be finite.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a fair coin flip.
    #[inline]
    fn next_bool(&mut self) -> bool {
        // Use the top bit (best-quality bit for + / ++ scramblers).
        self.next_u64() >> 63 == 1
    }

    /// Returns a uniformly random integer in `[0, bound)` without modulo
    /// bias, using Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire 2019: multiply a random word by the bound and keep the high
        // half; reject the small biased region of the low half.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // threshold = 2^64 mod bound, computed without u128 division by
            // the standard wrapping trick.
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly random integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    fn next_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range_inclusive: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }
}

impl<T: RandomSource + ?Sized> RandomSource for &mut T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<T: RandomSource + ?Sized> RandomSource for Box<T> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A scripted source that replays a fixed sequence of words, then panics.
///
/// Intended for unit tests that need to force a specific random outcome
/// (e.g. "the Bernoulli coin comes up heads exactly twice").
#[derive(Debug, Clone)]
pub struct SequenceSource {
    words: Vec<u64>,
    pos: usize,
}

impl SequenceSource {
    /// Creates a source that yields `words` in order.
    #[must_use]
    pub fn new(words: Vec<u64>) -> Self {
        Self { words, pos: 0 }
    }

    /// Number of words not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }
}

impl RandomSource for SequenceSource {
    fn next_u64(&mut self) -> u64 {
        let w = *self
            .words
            .get(self.pos)
            .expect("SequenceSource exhausted: test consumed more randomness than scripted");
        self.pos += 1;
        w
    }
}

/// A wrapper that counts how many 64-bit words the inner source produced.
///
/// Used by tests and experiments that audit randomness consumption (e.g.
/// verifying that a `Bernoulli(2^-t)` coin consumes exactly one word).
#[derive(Debug, Clone)]
pub struct CountingSource<R> {
    inner: R,
    count: u64,
}

impl<R: RandomSource> CountingSource<R> {
    /// Wraps `inner`, starting the count at zero.
    #[must_use]
    pub fn new(inner: R) -> Self {
        Self { inner, count: 0 }
    }

    /// Number of `next_u64` calls made so far.
    #[must_use]
    pub fn words_drawn(&self) -> u64 {
        self.count
    }

    /// Consumes the wrapper, returning the inner source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RandomSource> RandomSource for CountingSource<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.count += 1;
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_bound_one_is_always_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..32 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let _ = rng.next_below(0);
    }

    #[test]
    fn next_range_inclusive_covers_endpoints() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2_000 {
            match rng.next_range_inclusive(5, 8) {
                5 => saw_lo = true,
                8 => saw_hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn next_range_full_domain_does_not_overflow() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let _ = rng.next_range_inclusive(0, u64::MAX);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_f64_mean_is_about_half() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn sequence_source_replays_and_counts() {
        let mut s = CountingSource::new(SequenceSource::new(vec![1, 2, 3]));
        assert_eq!(s.next_u64(), 1);
        assert_eq!(s.next_u64(), 2);
        assert_eq!(s.words_drawn(), 2);
        assert_eq!(s.into_inner().remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn sequence_source_panics_when_exhausted() {
        let mut s = SequenceSource::new(vec![]);
        let _ = s.next_u64();
    }

    #[test]
    fn trait_object_usage_compiles() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let dynref: &mut dyn RandomSource = &mut rng;
        let _ = dynref.next_below(10);
    }
}
