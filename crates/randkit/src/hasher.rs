//! A deterministic SplitMix64-based [`Hasher`] for hash maps whose keys
//! are already integers.
//!
//! The standard library's default `HashMap` hasher is SipHash-1-3: a keyed
//! PRF chosen to resist hash-flooding from *adversarial* string keys. The
//! engine's hot path resolves `u64` keys that have already been salted and
//! mixed by the key→shard router, so SipHash's per-lookup compression
//! rounds are pure overhead — and its process-random key breaks the
//! bit-for-bit reproducibility the rest of the workspace guarantees. This
//! module swaps it for one round of the [`mix64`] finalizer: a bijective
//! avalanche over the full 64-bit word, measured in single nanoseconds,
//! identical on every platform and every run.
//!
//! ```
//! use ac_randkit::BuildSplitMix64;
//! use std::collections::HashMap;
//!
//! let mut index: HashMap<u64, u32, BuildSplitMix64> = HashMap::default();
//! index.insert(0xFEED, 7);
//! assert_eq!(index.get(&0xFEED), Some(&7));
//! ```

use crate::splitmix::mix64;
use std::hash::{BuildHasher, Hasher};

/// One-round SplitMix64 finalizer hasher for integer keys.
///
/// `write_u64`/`write_u32`/... fold each word through [`mix64`];
/// arbitrary byte slices fold in 8-byte little-endian chunks, so the
/// hasher is total (any `Hash` impl works), merely fastest on the integer
/// keys it is built for. The output is a bijection of the input for a
/// single `u64` write — distinct keys can never collide in the hasher
/// itself, only in the table's bucket reduction.
#[derive(Debug, Clone, Default)]
pub struct SplitMix64Hasher {
    state: u64,
}

impl Hasher for SplitMix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunked little-endian fold; the tail chunk is zero-padded. The
        // length is folded in so "ab" + "c" and "abc" cannot collide
        // across a chunk boundary.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(word));
        }
        self.state = mix64(self.state ^ (bytes.len() as u64) ^ LEN_TAG);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// Domain-separation tag for the byte-slice path of
/// [`SplitMix64Hasher::write`].
const LEN_TAG: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic [`BuildHasher`] producing [`SplitMix64Hasher`]s.
///
/// Every build yields the identical hasher — hash maps keyed through it
/// iterate and resize identically across runs and platforms, which keeps
/// engine diagnostics (and any future map-order-dependent fast path)
/// reproducible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildSplitMix64;

impl BuildHasher for BuildSplitMix64 {
    type Hasher = SplitMix64Hasher;

    #[inline]
    fn build_hasher(&self) -> SplitMix64Hasher {
        SplitMix64Hasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        BuildSplitMix64.hash_one(v)
    }

    #[test]
    fn u64_hash_is_the_mix64_finalizer() {
        for k in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(hash_one(k), mix64(k));
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = BuildSplitMix64.build_hasher();
        let b = BuildSplitMix64.build_hasher();
        assert_eq!(a.finish(), b.finish());
        assert_eq!(hash_one(7u64), hash_one(7u64));
    }

    #[test]
    fn map_round_trips_with_custom_hasher() {
        let mut m: HashMap<u64, u32, BuildSplitMix64> = HashMap::default();
        for k in 0..10_000u64 {
            m.insert(k * 31, k as u32);
        }
        for k in 0..10_000u64 {
            assert_eq!(m.get(&(k * 31)), Some(&(k as u32)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn byte_slices_with_shared_prefixes_do_not_collide() {
        let words: &[&[u8]] = &[b"", b"a", b"ab", b"abc", b"abcd", b"abcdefgh", b"abcdefghi"];
        let mut seen = std::collections::HashSet::new();
        for w in words {
            assert!(seen.insert(hash_one(*w)), "collision on {w:?}");
        }
        // Chunk-boundary split vs contiguous write must differ too.
        let mut split = BuildSplitMix64.build_hasher();
        split.write(b"abcdefgh");
        split.write(b"i");
        let mut whole = BuildSplitMix64.build_hasher();
        whole.write(b"abcdefghi");
        assert_ne!(split.finish(), whole.finish());
    }

    #[test]
    fn sequential_keys_avalanche() {
        // Low-bit diversity in, high avalanche out: adjacent keys land in
        // different 64ths of the output space often enough to balance a
        // table (crude but effective smoke check).
        let mut buckets = [0u32; 64];
        for k in 0..64_000u64 {
            buckets[(hash_one(k) >> 58) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(max < 2 * min, "bucket spread {min}..{max}");
    }
}
