//! Xoshiro256++: the workspace's main pseudorandom generator.
//!
//! Reference: Blackman & Vigna, "Scrambled Linear Pseudorandom Number
//! Generators", ACM TOMS 2021 (public-domain reference code at
//! <https://prng.di.unimi.it/xoshiro256plusplus.c>).

use crate::splitmix::SplitMix64;
use crate::RandomSource;

/// Xoshiro256++ pseudorandom generator: 256 bits of state, period
/// `2^256 - 1`, excellent statistical quality, ~1 ns per output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one forbidden state of the
    /// underlying linear engine).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Self { s }
    }

    /// Creates a generator by expanding a 64-bit seed through SplitMix64,
    /// the seeding procedure recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output is a bijection of a counter, so four successive
        // outputs cannot all be zero.
        Self { s }
    }

    /// The full 256-bit state, for serialization (e.g. the `ac-engine`
    /// checkpoint records each shard's RNG so a restored engine continues
    /// the exact same stream). Round-trips through
    /// [`Xoshiro256PlusPlus::from_state`].
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Advances the generator `2^128` steps; useful for carving
    /// non-overlapping subsequences out of one seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_4061_6EE3_8A36,
            0x3982_0328_2431_9937,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RandomSource for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the canonical C implementation with state
    /// `[1, 2, 3, 4]`.
    #[test]
    fn matches_reference_vector() {
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn state_round_trips() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(42);
        for _ in 0..17 {
            let _ = g.next_u64();
        }
        let mut replica = Xoshiro256PlusPlus::from_state(g.state());
        for _ in 0..100 {
            assert_eq!(g.next_u64(), replica.next_u64());
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_decorrelates_streams() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn bit_balance_is_reasonable() {
        // Sanity check, not a PRNG test suite: over 64k words the fraction
        // of set bits should be very close to 1/2.
        let mut g = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut ones = 0u64;
        let n = 65_536u64;
        for _ in 0..n {
            ones += u64::from(g.next_u64().count_ones());
        }
        let frac = ones as f64 / (n as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.002, "bit fraction = {frac}");
    }
}
