//! Property-based tests for the randomness substrate.

use ac_randkit::{
    trial_seed, AliasTable, Bernoulli, BernoulliPow2, Binomial, Geometric, RandomSource,
    SplitMix64, UniformU64, Xoshiro256PlusPlus, Zipf,
};
use proptest::prelude::*;

proptest! {
    /// Lemire rejection never leaves the requested range.
    #[test]
    fn next_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Canonical floats live in [0, 1) and the open variant in (0, 1].
    #[test]
    fn float_ranges(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            prop_assert!(y > 0.0 && y <= 1.0);
        }
    }

    /// Geometric samples are at least 1, and mean-bounded sanity holds
    /// over a small batch.
    #[test]
    fn geometric_support(seed in any::<u64>(), p in 0.001f64..1.0) {
        let g = Geometric::new(p).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(g.sample(&mut rng) >= 1);
        }
    }

    /// Binomial samples stay within 0..=n across all regimes (BINV,
    /// BTPE, flipped).
    #[test]
    fn binomial_support(seed in any::<u64>(), n in 0u64..1_000_000, p in 0.0f64..=1.0) {
        let d = Binomial::new(n, p).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert!(d.sample(&mut rng) <= n);
        }
    }

    /// The 2^-t coin with t = 0 is constantly true; larger t only gets
    /// rarer (monotone in a coupled sense: sampling with the same seed
    /// and a larger t cannot flip false -> true given the nested-mask
    /// construction).
    #[test]
    fn pow2_coin_monotone_in_t(seed in any::<u64>(), t in 0u32..63) {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(seed);
        let loose = BernoulliPow2::new(t).sample(&mut a);
        let tight = BernoulliPow2::new(t + 1).sample(&mut b);
        // Same word; tight requires one more zero bit.
        prop_assert!(loose || !tight);
    }

    /// Bernoulli(0)/Bernoulli(1) are constant for any seed.
    #[test]
    fn bernoulli_extremes(seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        prop_assert!(!Bernoulli::new(0.0).unwrap().sample(&mut rng));
        prop_assert!(Bernoulli::new(1.0).unwrap().sample(&mut rng));
    }

    /// Uniform ranges hit only their support.
    #[test]
    fn uniform_support(seed in any::<u64>(), lo in 0u64..1 << 40, span in 0u64..1 << 40) {
        let d = UniformU64::new(lo, lo + span).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..20 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= lo + span);
        }
    }

    /// Alias tables only emit indices with positive weight.
    #[test]
    fn alias_respects_zero_weights(seed in any::<u64>(), weights in prop::collection::vec(0.0f64..10.0, 1..40)) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..100 {
            let i = table.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "drew zero-weight symbol {i}");
        }
    }

    /// Zipf pmf is normalized and monotone nonincreasing in the rank.
    #[test]
    fn zipf_pmf_shape(n in 1u64..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) >= z.pmf(k + 1) - 1e-15);
        }
    }

    /// trial_seed is injective over contiguous index blocks.
    #[test]
    fn trial_seed_block_injective(master in any::<u64>(), start in 0u64..1 << 48) {
        let mut seen = std::collections::HashSet::new();
        for i in start..start + 100 {
            prop_assert!(seen.insert(trial_seed(master, i)));
        }
    }

    /// Generators are deterministic given their seed.
    #[test]
    fn generators_deterministic(seed in any::<u64>()) {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
