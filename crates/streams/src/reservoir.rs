//! Approximate reservoir sampling ([GS09]).
//!
//! Classical reservoir sampling needs the current stream length `n` to
//! set the replacement probability `k/n` — an `O(log n)`-bit counter.
//! Gronemeier & Sauerhoff showed an *approximate* counter suffices, with
//! the inclusion probabilities distorted by only `1 ± ε`; the paper cites
//! this as "approximate reservoir sampling". [`ApproxReservoir`] drives
//! the replacement decisions from any [`ApproxCounter`].

use ac_core::ApproxCounter;
use ac_randkit::RandomSource;

/// A size-`k` uniform sample of a stream, maintained with an approximate
/// stream-length counter.
#[derive(Debug, Clone)]
pub struct ApproxReservoir<T, C> {
    sample: Vec<T>,
    capacity: usize,
    length_counter: C,
    /// Exact count of items seen (diagnostics only — the algorithm never
    /// reads it).
    items_seen: u64,
}

impl<T, C: ApproxCounter> ApproxReservoir<T, C> {
    /// Creates a reservoir of size `capacity` whose length estimates come
    /// from `length_counter` (which should be freshly reset).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, length_counter: C) -> Self {
        assert!(capacity > 0, "reservoir needs positive capacity");
        Self {
            sample: Vec::with_capacity(capacity),
            capacity,
            length_counter,
            items_seen: 0,
        }
    }

    /// Offers an item to the reservoir.
    pub fn offer(&mut self, item: T, rng: &mut dyn RandomSource) {
        self.items_seen += 1;
        self.length_counter.increment(rng);
        if self.sample.len() < self.capacity {
            self.sample.push(item);
            return;
        }
        // Replacement probability k/n̂ with the approximate length n̂
        // (clamped so early under-estimates cannot push it above 1).
        let n_hat = self.length_counter.estimate().max(self.capacity as f64);
        let p = self.capacity as f64 / n_hat;
        if rng.next_f64() < p {
            let slot = rng.next_below(self.capacity as u64) as usize;
            self.sample[slot] = item;
        }
    }

    /// The current sample (arbitrary order).
    #[must_use]
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Reservoir capacity `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact number of items offered (diagnostics).
    #[must_use]
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// The approximate stream length the algorithm actually uses.
    #[must_use]
    pub fn estimated_length(&self) -> f64 {
        self.length_counter.estimate()
    }

    /// Register bits of the length counter — the quantity the
    /// approximate variant shrinks from `O(log n)` to `O(log log n)`.
    #[must_use]
    pub fn length_counter_bits(&self) -> u64 {
        ac_bitio::StateBits::state_bits(&self.length_counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, MorrisPlus};
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn rejects_zero_capacity() {
        let _: ApproxReservoir<u64, ExactCounter> = ApproxReservoir::new(0, ExactCounter::new());
    }

    #[test]
    fn fills_before_sampling() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut r = ApproxReservoir::new(5, ExactCounter::new());
        for i in 0..5u64 {
            r.offer(i, &mut rng);
        }
        let mut got: Vec<u64> = r.sample().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exact_counter_gives_classical_uniformity() {
        // With an exact length counter this is *almost* classical
        // reservoir sampling (replace-then-pick-slot instead of Vitter's
        // coupled choice, which is also exactly uniform). Check per-item
        // inclusion frequencies over many runs.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let n = 40u64;
        let k = 8;
        let runs = 20_000;
        let mut inclusion = vec![0u32; n as usize];
        for _ in 0..runs {
            let mut r = ApproxReservoir::new(k, ExactCounter::new());
            for i in 0..n {
                r.offer(i, &mut rng);
            }
            for &i in r.sample() {
                inclusion[i as usize] += 1;
            }
        }
        let expected = runs as f64 * k as f64 / n as f64; // 4000
        for (i, &c) in inclusion.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.10, "item {i}: inclusion {c} vs {expected}");
        }
    }

    #[test]
    fn approximate_counter_stays_near_uniform() {
        // The GS09 claim: with a (1±ε) length counter the inclusion
        // probabilities are within ~(1±ε) of uniform. Use a fairly
        // accurate Morris+ and verify no item deviates grossly.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let n = 60u64;
        let k = 6;
        let runs = 20_000;
        let mut inclusion = vec![0u32; n as usize];
        for _ in 0..runs {
            let counter = MorrisPlus::new(0.05, 8).unwrap();
            let mut r = ApproxReservoir::new(k, counter);
            for i in 0..n {
                r.offer(i, &mut rng);
            }
            for &i in r.sample() {
                inclusion[i as usize] += 1;
            }
        }
        let expected = runs as f64 * k as f64 / n as f64;
        for (i, &c) in inclusion.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.25, "item {i}: inclusion {c} vs {expected}");
        }
    }

    #[test]
    fn length_counter_is_small() {
        // The [GS09] deployment: a plain Morris length counter. At
        // a = 0.1 the level after 10^6 increments is
        // ≈ ln(10^5)/ln(1.1) ≈ 121 → 7 bits, vs 20 for exact. (Morris+
        // at tight (ε, δ) only wins at much larger N — its deterministic
        // prefix register alone costs log₂(8/a) bits; see EXPERIMENTS.md
        // E1 for the honest constant-factor discussion.)
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let counter = ac_core::MorrisCounter::new(0.1).unwrap();
        let mut r = ApproxReservoir::new(4, counter);
        for i in 0..1_000_000u64 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items_seen(), 1_000_000);
        assert!(
            r.length_counter_bits() < 10,
            "bits={}",
            r.length_counter_bits()
        );
        let rel = (r.estimated_length() - 1.0e6).abs() / 1.0e6;
        // sd ≈ sqrt(a/2) ≈ 22 %; allow a wide band.
        assert!(rel < 0.9, "length rel err {rel}");
    }
}
