//! Count-Min sketch with approximate-counter cells.
//!
//! A Count-Min sketch answers per-key frequency queries for an *implicit*
//! set of keys using `w × h` cells, each a counter. Classically the cells
//! are exact `O(log n)`-bit registers; with Morris-family cells the
//! per-cell cost drops to `O(log log n)` — the same per-counter saving
//! the paper motivates, multiplied across the whole sketch. (This is the
//! natural composition of [CM04] with approximate counting; the paper's
//! ℓ₁ heavy-hitters citation [BDW19] works in the same regime.)

use ac_core::ApproxCounter;
use ac_randkit::{RandomSource, SplitMix64};

/// Count-Min sketch over a `u64` key universe, generic over the cell
/// counter type.
///
/// Point queries return the minimum cell estimate across rows: an
/// overestimate in expectation by at most `(stream length)/width` per
/// row with exact cells, degraded by the cells' `(1±ε)` error when
/// approximate.
#[derive(Debug, Clone)]
pub struct CountMinSketch<C> {
    /// Row-major cells: `rows × width`.
    cells: Vec<C>,
    width: usize,
    rows: usize,
    /// Per-row hash keys (fixed at construction).
    row_seeds: Vec<u64>,
    items_seen: u64,
}

impl<C: ApproxCounter + Clone> CountMinSketch<C> {
    /// Creates a sketch with `rows` rows of `width` cells, cloned from
    /// `template` (freshly reset). `seed` fixes the hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `rows` is zero.
    pub fn new(width: usize, rows: usize, seed: u64, template: &C) -> Self {
        assert!(width > 0 && rows > 0, "sketch needs positive dimensions");
        let mut fresh = template.clone();
        fresh.reset();
        let mut seeder = SplitMix64::new(seed);
        let row_seeds = (0..rows).map(|_| seeder.next_u64()).collect();
        Self {
            cells: vec![fresh; width * rows],
            width,
            rows,
            row_seeds,
            items_seen: 0,
        }
    }

    /// Number of cells per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Items offered so far (diagnostics).
    #[must_use]
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// The cell index of `key` in `row`.
    fn cell_of(&self, row: usize, key: u64) -> usize {
        // One SplitMix64 finalizer round keyed by the row seed: cheap,
        // well-mixed, deterministic.
        let mut h = SplitMix64::new(self.row_seeds[row] ^ key);
        row * self.width + (h.next_u64() % self.width as u64) as usize
    }

    /// Records one occurrence of `key`.
    pub fn offer(&mut self, key: u64, rng: &mut dyn RandomSource) {
        self.items_seen += 1;
        for row in 0..self.rows {
            let idx = self.cell_of(row, key);
            self.cells[idx].increment(rng);
        }
    }

    /// Records `n` occurrences of `key` (bulk path).
    pub fn offer_many(&mut self, key: u64, n: u64, rng: &mut dyn RandomSource) {
        self.items_seen += n;
        for row in 0..self.rows {
            let idx = self.cell_of(row, key);
            self.cells[idx].increment_by(n, rng);
        }
    }

    /// Applies a whole `(key, delta)` batch — the sketch-side analogue of
    /// `ac-engine`'s batch API. Each pair rides the cells' fast-forward
    /// path, so cost is `O(batch · rows + cell transitions)`, independent
    /// of the deltas' magnitudes.
    pub fn update_by(&mut self, batch: &[(u64, u64)], rng: &mut dyn RandomSource) {
        for &(key, delta) in batch {
            self.offer_many(key, delta, rng);
        }
    }

    /// Point query: the minimum cell estimate across rows.
    #[must_use]
    pub fn estimate(&self, key: u64) -> f64 {
        (0..self.rows)
            .map(|row| self.cells[self.cell_of(row, key)].estimate())
            .fold(f64::INFINITY, f64::min)
    }

    /// Total register bits across all cells — the quantity approximate
    /// cells shrink.
    #[must_use]
    pub fn cell_state_bits(&self) -> u64 {
        self.cells.iter().map(ac_bitio::StateBits::state_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, MorrisCounter};
    use ac_randkit::{Xoshiro256PlusPlus, Zipf};

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn rejects_zero_dimensions() {
        let _ = CountMinSketch::new(0, 2, 1, &ExactCounter::new());
    }

    #[test]
    fn exact_cells_never_underestimate() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut cm = CountMinSketch::new(64, 4, 7, &ExactCounter::new());
        let mut truth = std::collections::HashMap::<u64, u64>::new();
        let zipf = Zipf::new(300, 1.1).unwrap();
        for _ in 0..20_000 {
            let k = zipf.sample(&mut rng);
            cm.offer(k, &mut rng);
            *truth.entry(k).or_insert(0) += 1;
        }
        for (&k, &t) in &truth {
            assert!(
                cm.estimate(k) >= t as f64,
                "key {k}: {} < {t}",
                cm.estimate(k)
            );
        }
    }

    #[test]
    fn exact_cells_overestimate_within_cm_bound() {
        // Classical CM guarantee: with width w, overestimate ≤ e·n/w with
        // probability ≥ 1 - e^-rows per key; check the generous bound
        // 4·n/w holds for the vast majority of keys.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let (w, r) = (128, 4);
        let mut cm = CountMinSketch::new(w, r, 11, &ExactCounter::new());
        let mut truth = std::collections::HashMap::<u64, u64>::new();
        let zipf = Zipf::new(1_000, 1.0).unwrap();
        let n = 50_000;
        for _ in 0..n {
            let k = zipf.sample(&mut rng);
            cm.offer(k, &mut rng);
            *truth.entry(k).or_insert(0) += 1;
        }
        let bound = 4.0 * f64::from(n) / w as f64;
        let violations = truth
            .iter()
            .filter(|(&k, &t)| cm.estimate(k) - t as f64 > bound)
            .count();
        assert!(
            violations <= truth.len() / 20,
            "{violations}/{} beyond bound",
            truth.len()
        );
    }

    #[test]
    fn morris_cells_track_exact_cells() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let (w, r) = (64, 3);
        let mut exact = CountMinSketch::new(w, r, 13, &ExactCounter::new());
        let mut approx = CountMinSketch::new(w, r, 13, &MorrisCounter::new(0.02).unwrap());
        let zipf = Zipf::new(200, 1.2).unwrap();
        for _ in 0..100_000 {
            let k = zipf.sample(&mut rng);
            exact.offer(k, &mut rng);
            approx.offer(k, &mut rng);
        }
        // Head keys: the two sketches agree within the cell accuracy.
        for k in 1..=5u64 {
            let e = exact.estimate(k);
            let a = approx.estimate(k);
            assert!((a - e).abs() / e < 0.3, "key {k}: exact {e} vs approx {a}");
        }
        // And the approximate cells are cheaper.
        assert!(
            approx.cell_state_bits() < exact.cell_state_bits(),
            "morris {} vs exact {}",
            approx.cell_state_bits(),
            exact.cell_state_bits()
        );
    }

    #[test]
    fn bulk_offer_matches_semantics() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut cm = CountMinSketch::new(32, 2, 5, &ExactCounter::new());
        cm.offer_many(42, 1_000, &mut rng);
        assert_eq!(cm.estimate(42), 1_000.0);
        assert_eq!(cm.items_seen(), 1_000);
    }

    #[test]
    fn batched_update_by_matches_offer_many() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut a = CountMinSketch::new(32, 2, 5, &ExactCounter::new());
        let mut b = CountMinSketch::new(32, 2, 5, &ExactCounter::new());
        let batch = [(1u64, 100u64), (2, 50), (1, 25), (3, 7)];
        a.update_by(&batch, &mut rng);
        for &(k, d) in &batch {
            b.offer_many(k, d, &mut rng);
        }
        for k in [1u64, 2, 3] {
            assert_eq!(a.estimate(k), b.estimate(k), "key {k}");
        }
        assert_eq!(a.items_seen(), 182);
    }

    #[test]
    fn unseen_key_estimates_only_collision_noise() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut cm = CountMinSketch::new(256, 4, 9, &ExactCounter::new());
        for k in 0..100u64 {
            cm.offer_many(k, 10, &mut rng);
        }
        // A key far outside the inserted set: its estimate is bounded by
        // collision mass, typically 0 at this load factor.
        let ghost = cm.estimate(999_999);
        assert!(ghost <= 30.0, "ghost estimate {ghost}");
    }
}
