//! Hash-keyed approximate counters for open key universes.

use ac_bitio::StateBits;
use ac_core::ApproxCounter;
use ac_randkit::RandomSource;
use std::collections::HashMap;
use std::hash::Hash;

/// A dictionary mapping keys to approximate counters, creating counters
/// on first touch.
///
/// This is the "number of visits to each page on Wikipedia" deployment
/// when the page set is not known in advance. The hash table's own
/// pointer overhead is *not* part of the paper's storage model (which
/// counts per-counter register bits); [`ApproxCountingDict::counter_state_bits`]
/// reports the register total, and
/// [`ApproxCountingDict::len`] lets callers add whatever per-key overhead
/// their favorite dictionary costs.
#[derive(Debug, Clone)]
pub struct ApproxCountingDict<K, C> {
    template: C,
    counters: HashMap<K, C>,
}

impl<K: Eq + Hash, C: ApproxCounter + Clone> ApproxCountingDict<K, C> {
    /// Creates an empty dictionary whose counters clone `template`
    /// (freshly reset).
    pub fn new(template: &C) -> Self {
        let mut fresh = template.clone();
        fresh.reset();
        Self {
            template: fresh,
            counters: HashMap::new(),
        }
    }

    /// Number of distinct keys seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no key has been seen.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Increments the counter for `key`, creating it on first touch.
    pub fn increment(&mut self, key: K, rng: &mut dyn RandomSource) {
        self.counters
            .entry(key)
            .or_insert_with(|| self.template.clone())
            .increment(rng);
    }

    /// Bulk-increments the counter for `key` by `n`.
    pub fn increment_by(&mut self, key: K, n: u64, rng: &mut dyn RandomSource) {
        self.counters
            .entry(key)
            .or_insert_with(|| self.template.clone())
            .increment_by(n, rng);
    }

    /// The estimate for `key` (0 for unseen keys).
    pub fn estimate<Q>(&self, key: &Q) -> f64
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.counters.get(key).map_or(0.0, ApproxCounter::estimate)
    }

    /// Iterates over `(key, estimate)` pairs in arbitrary order.
    pub fn estimates(&self) -> impl Iterator<Item = (&K, f64)> {
        self.counters.iter().map(|(k, c)| (k, c.estimate()))
    }

    /// The `k` keys with the largest estimates, descending (ties broken
    /// arbitrarily).
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(&K, f64)> {
        let mut all: Vec<(&K, f64)> = self.estimates().collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("estimates are not NaN"));
        all.truncate(k);
        all
    }

    /// Total register bits across all counters (the paper's storage
    /// model; excludes hash-table overhead — see type docs).
    #[must_use]
    pub fn counter_state_bits(&self) -> u64 {
        self.counters.values().map(StateBits::state_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{MorrisPlus, NelsonYuCounter, NyParams};
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    fn unseen_keys_estimate_zero() {
        let dict: ApproxCountingDict<String, MorrisPlus> =
            ApproxCountingDict::new(&MorrisPlus::with_base(0.5).unwrap());
        assert_eq!(dict.estimate("nope"), 0.0);
        assert!(dict.is_empty());
    }

    #[test]
    fn counts_keys_independently() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let p = NyParams::new(0.2, 10).unwrap();
        let mut dict = ApproxCountingDict::new(&NelsonYuCounter::new(p));
        dict.increment_by("alpha", 50_000, &mut rng);
        dict.increment_by("beta", 1_000, &mut rng);
        dict.increment("gamma", &mut rng);
        assert_eq!(dict.len(), 3);
        let a = dict.estimate("alpha");
        let b = dict.estimate("beta");
        assert!((a - 50_000.0).abs() / 50_000.0 < 0.5, "a={a}");
        assert!((b - 1_000.0).abs() / 1_000.0 < 0.5, "b={b}");
        assert_eq!(dict.estimate("gamma"), 1.0, "single increment is exact");
    }

    #[test]
    fn top_k_orders_by_estimate() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let p = NyParams::new(0.1, 10).unwrap();
        let mut dict = ApproxCountingDict::new(&NelsonYuCounter::new(p));
        dict.increment_by("big", 500_000, &mut rng);
        dict.increment_by("mid", 5_000, &mut rng);
        dict.increment_by("small", 50, &mut rng);
        let top = dict.top_k(2);
        assert_eq!(*top[0].0, "big");
        assert_eq!(*top[1].0, "mid");
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn state_bits_grow_with_keys() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut dict = ApproxCountingDict::new(&MorrisPlus::with_base(1.0).unwrap());
        dict.increment_by(0u32, 1_000, &mut rng);
        let one_key_bits = dict.counter_state_bits();
        for k in 1..100u32 {
            dict.increment_by(k, 1_000, &mut rng);
        }
        assert!(dict.counter_state_bits() > one_key_bits * 50);
    }
}
