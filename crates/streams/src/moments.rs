//! Frequency-moment estimation with approximate counters ([AMS99] +
//! [GS09]).
//!
//! The AMS estimator for `F_k = Σ_i f_i^k` tracks, for a uniformly random
//! stream position `J`, the number `r` of occurrences of the item `a_J`
//! in the suffix starting at `J`; then `n·(r^k − (r−1)^k)` is unbiased.
//! Gronemeier & Sauerhoff observed the suffix counter `r` can itself be a
//! *Morris* counter, shrinking the per-copy space from `O(log n)` to
//! `O(log log n)` at a small accuracy cost — the paper cites exactly this
//! use ("applying approximate counting for computing the frequency
//! moments of long data streams").

use ac_core::{ApproxCounter, CoreError, MorrisCounter};
use ac_randkit::RandomSource;

/// One AMS tracker: a sampled item and its (approximate) suffix count.
#[derive(Debug, Clone)]
struct AmsCopy {
    /// The tracked item, if any has been sampled yet.
    item: Option<u64>,
    /// Approximate count of tracked-item occurrences since sampling.
    suffix: MorrisCounter,
}

/// AMS frequency-moment estimator over a `u64` item universe, with
/// `copies` independent trackers averaged and suffix counts maintained by
/// `Morris(a)`.
#[derive(Debug, Clone)]
pub struct AmsMomentEstimator {
    k: u32,
    copies: Vec<AmsCopy>,
    /// Exact stream length (the harness supplies items one by one; the
    /// length is the trivially known loop counter, not counted as
    /// algorithm state in [GS09] either).
    n: u64,
}

impl AmsMomentEstimator {
    /// Creates an estimator for the `k`-th moment (`k ≥ 2`) using
    /// `copies` independent AMS trackers whose suffix counters are
    /// `Morris(a)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstant`] for `k < 2` or
    /// `copies == 0`, and propagates invalid `a`.
    pub fn new(k: u32, copies: usize, a: f64) -> Result<Self, CoreError> {
        if k < 2 {
            return Err(CoreError::InvalidConstant { got: f64::from(k) });
        }
        if copies == 0 {
            return Err(CoreError::InvalidConstant { got: 0.0 });
        }
        let suffix = MorrisCounter::new(a)?;
        Ok(Self {
            k,
            copies: vec![AmsCopy { item: None, suffix }; copies],
            n: 0,
        })
    }

    /// The moment order `k`.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of averaged copies.
    #[must_use]
    pub fn copies(&self) -> usize {
        self.copies.len()
    }

    /// Items processed so far.
    #[must_use]
    pub fn stream_len(&self) -> u64 {
        self.n
    }

    /// Processes one stream item.
    pub fn push(&mut self, item: u64, rng: &mut dyn RandomSource) {
        self.n += 1;
        for copy in &mut self.copies {
            // Reservoir-style position sampling: replace the tracked item
            // with probability 1/n.
            let replace = copy.item.is_none() || rng.next_below(self.n) == 0;
            if replace {
                copy.item = Some(item);
                copy.suffix.reset();
                copy.suffix.increment(rng);
            } else if copy.item == Some(item) {
                copy.suffix.increment(rng);
            }
        }
    }

    /// The averaged estimate of `F_k`; 0 on an empty stream.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let k = i32::try_from(self.k).expect("k is small");
        let per_copy: f64 = self
            .copies
            .iter()
            .map(|c| {
                let r = c.suffix.estimate().max(1.0);
                (self.n as f64) * (r.powi(k) - (r - 1.0).powi(k))
            })
            .sum();
        per_copy / self.copies.len() as f64
    }

    /// Total register bits across all suffix counters (excludes the
    /// tracked item identifiers, which any algorithm must store).
    #[must_use]
    pub fn suffix_counter_bits(&self) -> u64 {
        self.copies
            .iter()
            .map(|c| ac_bitio::StateBits::state_bits(&c.suffix))
            .sum()
    }
}

/// Exact `F_k` of a materialized stream (test/experiment baseline).
#[must_use]
pub fn exact_frequency_moment(items: &[u64], k: u32) -> f64 {
    use std::collections::HashMap;
    let mut freq: HashMap<u64, u64> = HashMap::new();
    for &x in items {
        *freq.entry(x).or_insert(0) += 1;
    }
    freq.values()
        .map(|&f| (f as f64).powi(i32::try_from(k).expect("k small")))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_randkit::{Xoshiro256PlusPlus, Zipf};

    #[test]
    fn rejects_bad_parameters() {
        assert!(AmsMomentEstimator::new(1, 10, 0.5).is_err());
        assert!(AmsMomentEstimator::new(2, 0, 0.5).is_err());
        assert!(AmsMomentEstimator::new(2, 10, -1.0).is_err());
    }

    #[test]
    fn exact_moment_reference() {
        // Stream: [1,1,1,2,2,3] -> F2 = 9 + 4 + 1 = 14.
        assert_eq!(exact_frequency_moment(&[1, 1, 1, 2, 2, 3], 2), 14.0);
        assert_eq!(exact_frequency_moment(&[], 2), 0.0);
        // F3 = 27 + 8 + 1 = 36.
        assert_eq!(exact_frequency_moment(&[1, 1, 1, 2, 2, 3], 3), 36.0);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let e = AmsMomentEstimator::new(2, 4, 0.1).unwrap();
        assert_eq!(e.estimate(), 0.0);
    }

    #[test]
    fn f2_estimate_is_in_the_right_ballpark() {
        // Zipf(1.1) stream over 50 items: heavy skew so F2 is dominated
        // by the head and the estimator converges reasonably fast.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let zipf = Zipf::new(50, 1.1).unwrap();
        let stream: Vec<u64> = (0..30_000).map(|_| zipf.sample(&mut rng)).collect();
        let exact = exact_frequency_moment(&stream, 2);

        // Average several estimator runs to damp the (high) AMS variance.
        let mut total = 0.0;
        let runs = 30;
        for seed in 0..runs {
            let mut est = AmsMomentEstimator::new(2, 64, 0.01).unwrap();
            let mut r = Xoshiro256PlusPlus::seed_from_u64(100 + seed);
            for &x in &stream {
                est.push(x, &mut r);
            }
            total += est.estimate();
        }
        let mean = total / f64::from(runs as u32);
        let ratio = mean / exact;
        assert!(
            (0.6..1.6).contains(&ratio),
            "mean {mean} vs exact {exact} (ratio {ratio})"
        );
    }

    #[test]
    fn suffix_counters_use_sublogarithmic_space() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut est = AmsMomentEstimator::new(2, 16, 0.05).unwrap();
        // Constant stream: suffix counts grow to the stream length.
        for _ in 0..100_000u64 {
            est.push(7, &mut rng);
        }
        // Exact suffix counters would need 16 × 17 = 272 bits; Morris
        // levels are ≈ ln(0.05·1e5)/0.0488 ≈ 175 → 8 bits each.
        assert!(
            est.suffix_counter_bits() <= 16 * 10,
            "bits = {}",
            est.suffix_counter_bits()
        );
    }

    #[test]
    fn stream_length_is_tracked() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut est = AmsMomentEstimator::new(3, 2, 1.0).unwrap();
        for i in 0..500 {
            est.push(i % 7, &mut rng);
        }
        assert_eq!(est.stream_len(), 500);
    }
}
