//! Bit-exact counter state serialization.

use ac_bitio::{BitReader, BitWriter};
use ac_core::StateCodec;

/// Serialize/deserialize a counter's persistent state with
/// self-delimiting codes, so that arrays of counters can be stored in
/// (close to) their information-theoretic size.
///
/// `pack_state`/`unpack_state` must round-trip exactly; property tests in
/// [`crate::CounterArray`] verify this for every implementor.
///
/// Every [`StateCodec`] implementor (all five `ac-core` families,
/// including [`ExactCounter`](ac_core::ExactCounter)) gets this trait via
/// the blanket impl below — `StateCodec` is the canonical encode/decode
/// contract (shared with the `ac-engine` checkpoint layer); `PackState`
/// is its in-place, array-oriented face.
pub trait PackState {
    /// Appends the counter's state to the writer.
    fn pack_state(&self, w: &mut BitWriter<'_>);

    /// Restores the counter's state from the reader.
    ///
    /// The counter must have been constructed with the same parameters
    /// (base `a`, mantissa width, schedule, …) as the one that packed the
    /// state — parameters are program constants and are not serialized.
    ///
    /// # Panics
    ///
    /// Panics if the bits decode to a state unreachable under this
    /// counter's schedule (corrupt input or a parameter mismatch the
    /// caller failed to rule out — compare
    /// [`StateCodec::params_fingerprint`] first when the provenance of
    /// the bits is uncertain).
    fn unpack_state(&mut self, r: &mut BitReader<'_>);

    /// The exact number of bits `pack_state` will write.
    fn packed_bits(&self) -> u64;
}

impl<C: StateCodec> PackState for C {
    fn pack_state(&self, w: &mut BitWriter<'_>) {
        self.encode_state(w);
    }

    fn unpack_state(&mut self, r: &mut BitReader<'_>) {
        *self = self
            .decode_state(r)
            .unwrap_or_else(|e| panic!("unpack_state: {e}"));
    }

    fn packed_bits(&self) -> u64 {
        self.encoded_state_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_bitio::BitVec;
    use ac_core::{
        ApproxCounter, CsurosCounter, ExactCounter, MorrisCounter, MorrisPlus, NelsonYuCounter,
        NyParams,
    };
    use ac_randkit::Xoshiro256PlusPlus;

    fn round_trip<C: PackState + ApproxCounter + Clone + PartialEq + std::fmt::Debug>(
        original: &C,
        mut blank: C,
    ) {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            original.pack_state(&mut w);
        }
        assert_eq!(v.len(), original.packed_bits(), "length accounting");
        let mut r = BitReader::new(&v);
        blank.unpack_state(&mut r);
        assert_eq!(r.remaining(), 0, "all bits consumed");
        assert_eq!(original.estimate(), blank.estimate());
    }

    #[test]
    fn morris_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut c = MorrisCounter::new(0.25).unwrap();
        c.increment_by(100_000, &mut rng);
        round_trip(&c, MorrisCounter::new(0.25).unwrap());
    }

    #[test]
    fn csuros_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut c = CsurosCounter::new(8).unwrap();
        c.increment_by(123_456, &mut rng);
        round_trip(&c, CsurosCounter::new(8).unwrap());
    }

    #[test]
    fn morris_plus_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for n in [0u64, 50, 5_000, 300_000] {
            let mut c = MorrisPlus::new(0.2, 8).unwrap();
            c.increment_by(n, &mut rng);
            round_trip(&c, MorrisPlus::new(0.2, 8).unwrap());
        }
    }

    #[test]
    fn nelson_yu_round_trips() {
        let p = NyParams::new(0.2, 10).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for n in [0u64, 5, 1_000, 500_000] {
            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n, &mut rng);
            round_trip(&c, NelsonYuCounter::new(p));
        }
    }

    #[test]
    fn exact_round_trips_via_blanket_impl() {
        // ExactCounter had no hand-written PackState before; the blanket
        // impl over StateCodec covers it.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut c = ExactCounter::new();
        c.increment_by(987_654_321, &mut rng);
        round_trip(&c, ExactCounter::new());
    }

    #[test]
    fn fresh_counters_pack_to_a_few_bits() {
        let c = MorrisCounter::classic();
        assert!(c.packed_bits() <= 2, "zero level packs tiny");
    }
}
