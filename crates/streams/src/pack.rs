//! Bit-exact counter state serialization.

use ac_bitio::codes::{decode_delta0, decode_gamma0, encode_delta0, encode_gamma0};
use ac_bitio::{BitReader, BitWriter};
use ac_core::{CsurosCounter, MorrisCounter, MorrisPlus, NelsonYuCounter};

/// Serialize/deserialize a counter's persistent state with
/// self-delimiting codes, so that arrays of counters can be stored in
/// (close to) their information-theoretic size.
///
/// `pack_state`/`unpack_state` must round-trip exactly; property tests in
/// [`crate::CounterArray`] verify this for every implementor.
pub trait PackState {
    /// Appends the counter's state to the writer.
    fn pack_state(&self, w: &mut BitWriter<'_>);

    /// Restores the counter's state from the reader.
    ///
    /// The counter must have been constructed with the same parameters
    /// (base `a`, mantissa width, schedule, …) as the one that packed the
    /// state — parameters are program constants and are not serialized.
    fn unpack_state(&mut self, r: &mut BitReader<'_>);

    /// The exact number of bits `pack_state` will write.
    fn packed_bits(&self) -> u64;
}

impl PackState for MorrisCounter {
    fn pack_state(&self, w: &mut BitWriter<'_>) {
        encode_delta0(w, self.level());
    }

    fn unpack_state(&mut self, r: &mut BitReader<'_>) {
        self.set_level(decode_delta0(r));
    }

    fn packed_bits(&self) -> u64 {
        u64::from(ac_bitio::codes::delta_len(self.level() + 1))
    }
}

impl PackState for CsurosCounter {
    fn pack_state(&self, w: &mut BitWriter<'_>) {
        encode_delta0(w, self.register());
    }

    fn unpack_state(&mut self, r: &mut BitReader<'_>) {
        self.set_register(decode_delta0(r));
    }

    fn packed_bits(&self) -> u64 {
        u64::from(ac_bitio::codes::delta_len(self.register() + 1))
    }
}

impl PackState for MorrisPlus {
    fn pack_state(&self, w: &mut BitWriter<'_>) {
        encode_delta0(w, self.prefix());
        encode_delta0(w, self.morris().level());
    }

    fn unpack_state(&mut self, r: &mut BitReader<'_>) {
        let prefix = decode_delta0(r);
        let level = decode_delta0(r);
        self.restore_parts(prefix, level);
    }

    fn packed_bits(&self) -> u64 {
        u64::from(ac_bitio::codes::delta_len(self.prefix() + 1))
            + u64::from(ac_bitio::codes::delta_len(self.morris().level() + 1))
    }
}

impl PackState for NelsonYuCounter {
    fn pack_state(&self, w: &mut BitWriter<'_>) {
        let (x, y, t) = self.state_parts();
        // X is stored relative to X0 (the absolute level is implied by
        // the schedule); t is tiny, γ-coded; Y δ-coded.
        encode_delta0(w, x - self.params().x0());
        encode_delta0(w, y);
        encode_gamma0(w, u64::from(t));
    }

    fn unpack_state(&mut self, r: &mut BitReader<'_>) {
        let dx = decode_delta0(r);
        let y = decode_delta0(r);
        let t = decode_gamma0(r);
        self.restore_parts(
            self.params().x0() + dx,
            y,
            u32::try_from(t).expect("sampling exponent fits u32"),
        );
    }

    fn packed_bits(&self) -> u64 {
        let (x, y, t) = self.state_parts();
        u64::from(ac_bitio::codes::delta_len(x - self.params().x0() + 1))
            + u64::from(ac_bitio::codes::delta_len(y + 1))
            + u64::from(ac_bitio::codes::gamma_len(u64::from(t) + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_bitio::BitVec;
    use ac_core::{ApproxCounter, NyParams};
    use ac_randkit::Xoshiro256PlusPlus;

    fn round_trip<C: PackState + ApproxCounter + Clone + PartialEq + std::fmt::Debug>(
        original: &C,
        mut blank: C,
    ) {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            original.pack_state(&mut w);
        }
        assert_eq!(v.len(), original.packed_bits(), "length accounting");
        let mut r = BitReader::new(&v);
        blank.unpack_state(&mut r);
        assert_eq!(r.remaining(), 0, "all bits consumed");
        assert_eq!(original.estimate(), blank.estimate());
    }

    #[test]
    fn morris_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut c = MorrisCounter::new(0.25).unwrap();
        c.increment_by(100_000, &mut rng);
        round_trip(&c, MorrisCounter::new(0.25).unwrap());
    }

    #[test]
    fn csuros_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut c = CsurosCounter::new(8).unwrap();
        c.increment_by(123_456, &mut rng);
        round_trip(&c, CsurosCounter::new(8).unwrap());
    }

    #[test]
    fn morris_plus_round_trips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for n in [0u64, 50, 5_000, 300_000] {
            let mut c = MorrisPlus::new(0.2, 8).unwrap();
            c.increment_by(n, &mut rng);
            round_trip(&c, MorrisPlus::new(0.2, 8).unwrap());
        }
    }

    #[test]
    fn nelson_yu_round_trips() {
        let p = NyParams::new(0.2, 10).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for n in [0u64, 5, 1_000, 500_000] {
            let mut c = NelsonYuCounter::new(p);
            c.increment_by(n, &mut rng);
            round_trip(&c, NelsonYuCounter::new(p));
        }
    }

    #[test]
    fn fresh_counters_pack_to_a_few_bits() {
        let c = MorrisCounter::classic();
        assert!(c.packed_bits() <= 2, "zero level packs tiny");
    }
}
