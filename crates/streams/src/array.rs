//! Arrays of approximate counters — the paper's "many counters" scenario.

use crate::PackState;
use ac_bitio::{BitReader, BitVec, BitWriter, StateBits};
use ac_core::ApproxCounter;
use ac_randkit::RandomSource;

/// A fixed universe of `M` approximate counters sharing one parameter
/// plan.
///
/// This is the paper's motivating deployment: "if we are maintaining `M`
/// counters then it is natural to want `δ ≪ 1/M` so that each counter is
/// approximately correct with high probability" — which is exactly where
/// the `log log(1/δ)` bound beats the classical `log(1/δ)` per counter.
///
/// The array also supports [`CounterArray::pack`]: a bit-exact dump of
/// all counter states into a self-delimiting-coded [`BitVec`], realizing
/// the storage-size claims measurably (experiment E9).
#[derive(Debug, Clone)]
pub struct CounterArray<C> {
    counters: Vec<C>,
}

impl<C: ApproxCounter + Clone> CounterArray<C> {
    /// Creates `m` counters, each a clone of `template` (freshly reset).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(template: &C, m: usize) -> Self {
        assert!(m > 0, "array needs at least one counter");
        let mut fresh = template.clone();
        fresh.reset();
        Self {
            counters: vec![fresh; m],
        }
    }

    /// Number of counters `M`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array is empty (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Increments counter `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    #[inline]
    pub fn increment(&mut self, key: usize, rng: &mut dyn RandomSource) {
        self.counters[key].increment(rng);
    }

    /// Bulk-increments counter `key` by `n`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn increment_by(&mut self, key: usize, n: u64, rng: &mut dyn RandomSource) {
        self.counters[key].increment_by(n, rng);
    }

    /// The estimate for counter `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    #[must_use]
    pub fn estimate(&self, key: usize) -> f64 {
        self.counters[key].estimate()
    }

    /// Direct access to counter `key`.
    #[must_use]
    pub fn counter(&self, key: usize) -> &C {
        &self.counters[key]
    }

    /// Sum of all per-counter state bits (register-model accounting).
    #[must_use]
    pub fn total_state_bits(&self) -> u64 {
        self.counters.iter().map(StateBits::state_bits).sum()
    }

    /// Sum of the estimates (an approximate total stream length).
    #[must_use]
    pub fn total_estimate(&self) -> f64 {
        self.counters.iter().map(ApproxCounter::estimate).sum()
    }
}

impl<C: ApproxCounter + Clone + PackState> CounterArray<C> {
    /// Packs every counter's state into a self-delimiting bit vector.
    ///
    /// The result decodes back with [`CounterArray::unpack`] given the
    /// same template; its length is the honest storage cost of the whole
    /// array, the number experiment E9 compares against `M·⌈log₂ n⌉`
    /// exact counters.
    #[must_use]
    pub fn pack(&self) -> BitVec {
        let capacity: u64 = self.counters.iter().map(PackState::packed_bits).sum();
        let mut v = BitVec::with_capacity(capacity);
        let mut w = BitWriter::new(&mut v);
        for c in &self.counters {
            c.pack_state(&mut w);
        }
        v
    }

    /// Rebuilds an array from a packed bit vector.
    ///
    /// # Panics
    ///
    /// Panics if the bit vector does not contain exactly `m` valid
    /// states.
    #[must_use]
    pub fn unpack(template: &C, m: usize, packed: &BitVec) -> Self {
        let mut array = Self::new(template, m);
        let mut r = BitReader::new(packed);
        for c in &mut array.counters {
            c.unpack_state(&mut r);
        }
        assert_eq!(r.remaining(), 0, "trailing bits in packed array");
        array
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{MorrisCounter, NelsonYuCounter, NyParams};
    use ac_randkit::{trial_seed, Xoshiro256PlusPlus, Zipf};

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn rejects_empty_array() {
        let _ = CounterArray::new(&MorrisCounter::classic(), 0);
    }

    #[test]
    fn template_is_reset_before_cloning() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut template = MorrisCounter::classic();
        template.increment_by(1_000, &mut rng);
        let array = CounterArray::new(&template, 3);
        for k in 0..3 {
            assert_eq!(array.estimate(k), 0.0);
        }
    }

    #[test]
    fn per_key_counting_is_independent() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let p = NyParams::new(0.2, 12).unwrap();
        let mut array = CounterArray::new(&NelsonYuCounter::new(p), 4);
        array.increment_by(0, 10_000, &mut rng);
        array.increment_by(2, 500, &mut rng);
        let e0 = array.estimate(0);
        let e2 = array.estimate(2);
        assert!((e0 - 10_000.0).abs() / 10_000.0 < 0.5, "e0={e0}");
        assert!((e2 - 500.0).abs() / 500.0 < 0.5, "e2={e2}");
        assert_eq!(array.estimate(1), 0.0);
        assert_eq!(array.estimate(3), 0.0);
    }

    #[test]
    fn zipf_workload_total_is_preserved_approximately() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(trial_seed(3, 0));
        let m = 200;
        let zipf = Zipf::new(m as u64, 1.0).unwrap();
        let p = NyParams::new(0.1, 14).unwrap();
        let mut array = CounterArray::new(&NelsonYuCounter::new(p), m);
        let stream_len = 200_000u64;
        for _ in 0..stream_len {
            let key = (zipf.sample(&mut rng) - 1) as usize;
            array.increment(key, &mut rng);
        }
        let total = array.total_estimate();
        let rel = (total - stream_len as f64).abs() / stream_len as f64;
        // Sum of 200 per-key ~10 % errors concentrates much tighter.
        assert!(rel < 0.05, "total rel err {rel}");
    }

    #[test]
    fn pack_round_trips_entire_array() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let m = 64;
        let mut array = CounterArray::new(&MorrisCounter::new(0.125).unwrap(), m);
        for k in 0..m {
            array.increment_by(k, (k as u64 + 1) * 37, &mut rng);
        }
        let packed = array.pack();
        let restored = CounterArray::unpack(&MorrisCounter::new(0.125).unwrap(), m, &packed);
        for k in 0..m {
            assert_eq!(array.estimate(k), restored.estimate(k), "key {k}");
        }
    }

    #[test]
    fn packed_size_matches_accounting_and_beats_exact() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let m = 500;
        let mut array = CounterArray::new(&MorrisCounter::new(0.01).unwrap(), m);
        for k in 0..m {
            array.increment_by(k, 1_000_000, &mut rng);
        }
        let packed = array.pack();
        let expected: u64 = (0..m).map(|k| array.counter(k).packed_bits()).sum();
        assert_eq!(packed.len(), expected);
        // Exact counters would need ≥ 20 bits each for 10^6; Morris(0.01)
        // levels are ≈ ln(10^4)/0.00995 ≈ 925 → δ-coded ≈ 17 bits. The
        // point of the experiment is the gap at scale:
        let exact_bits = m as u64 * 20;
        assert!(
            packed.len() < exact_bits,
            "packed {} vs exact {exact_bits}",
            packed.len()
        );
    }

    #[test]
    fn total_state_bits_sums_members() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut array = CounterArray::new(&MorrisCounter::classic(), 10);
        for k in 0..10 {
            array.increment_by(k, 1 << 12, &mut rng);
        }
        let sum: u64 = (0..10)
            .map(|k| ac_bitio::StateBits::state_bits(array.counter(k)))
            .sum();
        assert_eq!(array.total_state_bits(), sum);
    }
}
