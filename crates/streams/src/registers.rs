//! A fixed-width register file: `M` counters in exactly `M × B` bits of
//! real, bit-addressed memory.
//!
//! [`CounterArray`](crate::CounterArray) holds counter structs on the
//! heap; this module is the hardware-shaped deployment the paper's
//! motivation describes — a provisioned table of `B`-bit slots where
//! every increment reads a register, runs the counter's transition, and
//! writes the register back. Works for any single-register counter
//! (Morris and Csűrös; the Nelson–Yu counter has three fields and packs
//! via [`PackState`](crate::PackState) instead).

use ac_bitio::{BitVec, StateBits};
use ac_core::{ApproxCounter, CsurosCounter, MorrisCounter};
use ac_randkit::RandomSource;

/// A counter whose entire persistent state is one unsigned register.
///
/// Implementors guarantee that `set_register_value(register_value())`
/// round-trips the whole state (parameters are program constants).
pub trait RegisterCounter: ApproxCounter {
    /// The current register value.
    fn register_value(&self) -> u64;

    /// Overwrites the register.
    fn set_register_value(&mut self, value: u64);
}

impl RegisterCounter for MorrisCounter {
    fn register_value(&self) -> u64 {
        self.level()
    }

    fn set_register_value(&mut self, value: u64) {
        self.set_level(value);
    }
}

impl RegisterCounter for CsurosCounter {
    fn register_value(&self) -> u64 {
        self.register()
    }

    fn set_register_value(&mut self, value: u64) {
        self.set_register(value);
    }
}

/// `M` approximate counters stored in a packed bit vector of `B`-bit
/// slots — total memory exactly `M × B` bits (plus one scratch counter).
///
/// Increments are read-modify-write: the addressed slot is loaded into
/// the scratch counter, one transition runs, and the register is stored
/// back. Values are clamped to the slot width (callers should plan the
/// width with [`ac_core::budget`], which also supplies hard caps, so
/// clamping never fires in practice).
#[derive(Debug, Clone)]
pub struct RegisterFile<C> {
    slots: BitVec,
    width: u32,
    len: usize,
    scratch: C,
}

impl<C: RegisterCounter + Clone> RegisterFile<C> {
    /// Creates `m` zeroed `width`-bit slots driven by clones of
    /// `template` (freshly reset).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `width` is 0 or > 63.
    pub fn new(template: &C, m: usize, width: u32) -> Self {
        assert!(m > 0, "register file needs at least one slot");
        assert!((1..=63).contains(&width), "slot width must be 1..=63");
        let mut scratch = template.clone();
        scratch.reset();
        let mut slots = BitVec::with_capacity(m as u64 * u64::from(width));
        for _ in 0..m {
            slots.push_bits(0, width);
        }
        Self {
            slots,
            width,
            len: m,
            scratch,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no slots (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Total storage: exactly `len × width` bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.slots.len()
    }

    fn read_slot(&self, key: usize) -> u64 {
        assert!(key < self.len, "slot {key} out of range {}", self.len);
        self.slots
            .get_bits(key as u64 * u64::from(self.width), self.width)
    }

    fn write_slot(&mut self, key: usize, value: u64) {
        let clamped = value.min((1u64 << self.width) - 1);
        let pos = key as u64 * u64::from(self.width);
        self.slots.overwrite_bits(pos, clamped, self.width);
    }

    /// Increments the counter in slot `key`.
    pub fn increment(&mut self, key: usize, rng: &mut dyn RandomSource) {
        let reg = self.read_slot(key);
        self.scratch.reset();
        self.scratch.set_register_value(reg);
        self.scratch.increment(rng);
        self.write_slot(key, self.scratch.register_value());
    }

    /// Bulk-increments slot `key` by `n` (fast-forward).
    pub fn increment_by(&mut self, key: usize, n: u64, rng: &mut dyn RandomSource) {
        let reg = self.read_slot(key);
        self.scratch.reset();
        self.scratch.set_register_value(reg);
        self.scratch.increment_by(n, rng);
        self.write_slot(key, self.scratch.register_value());
    }

    /// The estimate for slot `key`.
    #[must_use]
    pub fn estimate(&mut self, key: usize) -> f64 {
        let reg = self.read_slot(key);
        self.scratch.reset();
        self.scratch.set_register_value(reg);
        self.scratch.estimate()
    }

    /// Occupied (non-zero) slots — a cheap fill diagnostic.
    #[must_use]
    pub fn occupied(&self) -> usize {
        (0..self.len).filter(|&k| self.read_slot(k) != 0).count()
    }
}

impl<C> StateBits for RegisterFile<C> {
    fn state_bits(&self) -> u64 {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::budget::{plan_morris, DEFAULT_SLACK_SIGMAS};
    use ac_randkit::Xoshiro256PlusPlus;

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn rejects_empty() {
        let _ = RegisterFile::new(&MorrisCounter::classic(), 0, 8);
    }

    #[test]
    fn total_bits_is_exactly_m_times_b() {
        let f = RegisterFile::new(&MorrisCounter::classic(), 1_000, 17);
        assert_eq!(f.total_bits(), 17_000);
        assert_eq!(f.state_bits(), 17_000);
        assert_eq!(f.len(), 1_000);
    }

    #[test]
    fn slots_are_independent() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut f = RegisterFile::new(&MorrisCounter::classic(), 8, 10);
        f.increment_by(3, 1 << 12, &mut rng);
        assert_eq!(f.estimate(0), 0.0);
        assert!(f.estimate(3) > 100.0);
        assert_eq!(f.occupied(), 1);
    }

    #[test]
    fn matches_unpacked_counter_distribution() {
        // A register-file slot must behave exactly like a standalone
        // counter: same estimates in distribution. Compare means.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let template = MorrisCounter::new(0.1).unwrap();
        let n = 50_000u64;
        let trials = 2_000;
        let mut packed_sum = 0.0;
        let mut plain_sum = 0.0;
        for _ in 0..trials {
            let mut f = RegisterFile::new(&template, 1, 20);
            f.increment_by(0, n, &mut rng);
            packed_sum += f.estimate(0);
            let mut c = template.clone();
            c.increment_by(n, &mut rng);
            plain_sum += c.estimate();
        }
        let (a, b) = (packed_sum / trials as f64, plain_sum / trials as f64);
        assert!((a - b).abs() / b < 0.05, "packed {a} vs plain {b}");
    }

    #[test]
    fn planned_width_never_clamps() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let planned = plan_morris(14, 100_000, DEFAULT_SLACK_SIGMAS).unwrap();
        let mut f = RegisterFile::new(&planned, 16, 14);
        for k in 0..16 {
            f.increment_by(k, 100_000, &mut rng);
            let est = f.estimate(k);
            let rel = (est - 100_000.0).abs() / 100_000.0;
            assert!(rel < 0.2, "slot {k}: estimate {est}");
        }
    }

    #[test]
    fn csuros_slots_work_too() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let template = CsurosCounter::new(6).unwrap();
        let mut f = RegisterFile::new(&template, 4, 16);
        f.increment_by(2, 10_000, &mut rng);
        let rel = (f.estimate(2) - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.5, "rel {rel}");
    }

    #[test]
    fn step_increments_accumulate() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut f = RegisterFile::new(&MorrisCounter::classic(), 2, 8);
        for _ in 0..100 {
            f.increment(1, &mut rng);
        }
        assert!(f.estimate(1) > 10.0);
        assert_eq!(f.estimate(0), 0.0);
    }
}
