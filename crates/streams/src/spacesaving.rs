//! SpaceSaving heavy hitters, generic over the counter type ([BDW19]
//! flavor).
//!
//! The paper cites "ℓ₁ heavy hitters in insertion-only streams" as an
//! application of approximate counting. [`SpaceSaving`] is the classical
//! Metwally–Agrawal–El Abbadi algorithm with its per-slot counters
//! abstracted: [`ExactCounter`](ac_core::ExactCounter) recovers the
//! textbook algorithm, Morris-family counters give the small-space
//! variant where each slot stores `O(log log n)` bits instead of
//! `O(log n)`.

use ac_core::ApproxCounter;
use ac_randkit::RandomSource;

/// A reported heavy hitter.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitter {
    /// The item.
    pub item: u64,
    /// Its estimated count (an overestimate by at most the minimum slot
    /// value, as in classical SpaceSaving).
    pub estimate: f64,
}

/// One monitored item: its counter plus the epoch it was last offered
/// in, so [`SpaceSaving::decay`] can expire items that left the window.
#[derive(Debug, Clone)]
struct Slot<C> {
    item: u64,
    counter: C,
    touched: u64,
}

/// SpaceSaving with `k` slots over a `u64` item universe.
///
/// Guarantee (with exact counters): any item with true frequency
/// `> n/k` is present, and every estimate overshoots by at most `n/k`.
/// With `(1±ε)`-approximate counters both statements degrade by a
/// `(1±ε)` factor.
///
/// # Windowed decay
///
/// A plain SpaceSaving summary never forgets: once an item climbs to a
/// large slot value it stays "hot" forever, even if it stops arriving —
/// its slot is never the minimum, so it is never evicted. For workloads
/// where hotness must be *current* (e.g. tier demotion decisions),
/// [`SpaceSaving::decay`] closes an epoch: items not offered during the
/// epoch just ended are dropped, freeing their slots, and are returned
/// to the caller.
#[derive(Debug, Clone)]
pub struct SpaceSaving<C> {
    /// Monitored items and their counters; kept unsorted (k is small).
    slots: Vec<Slot<C>>,
    capacity: usize,
    template: C,
    /// Exact stream length (diagnostics only).
    items_seen: u64,
    /// Current epoch; bumped by [`SpaceSaving::decay`].
    epoch: u64,
}

impl<C: ApproxCounter + Clone> SpaceSaving<C> {
    /// Creates a summary with `capacity` slots; per-slot counters clone
    /// `template` (freshly reset).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, template: &C) -> Self {
        assert!(capacity > 0, "need at least one slot");
        let mut fresh = template.clone();
        fresh.reset();
        Self {
            slots: Vec::with_capacity(capacity),
            capacity,
            template: fresh,
            items_seen: 0,
            epoch: 0,
        }
    }

    /// Processes one stream item.
    pub fn offer(&mut self, item: u64, rng: &mut dyn RandomSource) {
        self.offer_by(item, 1, rng);
    }

    /// Processes `weight` occurrences of `item` at once — the weighted
    /// stream shape of batched pipelines, where replaying a large delta
    /// one [`SpaceSaving::offer`] at a time would cost `O(weight)`.
    pub fn offer_by(&mut self, item: u64, weight: u64, rng: &mut dyn RandomSource) {
        if weight == 0 {
            return;
        }
        self.items_seen += weight;
        let epoch = self.epoch;
        if let Some(s) = self.slots.iter_mut().find(|s| s.item == item) {
            s.counter.increment_by(weight, rng);
            s.touched = epoch;
            return;
        }
        if self.slots.len() < self.capacity {
            let mut counter = self.template.clone();
            counter.increment_by(weight, rng);
            self.slots.push(Slot {
                item,
                counter,
                touched: epoch,
            });
            return;
        }
        // Evict the slot with the smallest estimate; the newcomer
        // *inherits* its counter (the SpaceSaving "min + 1" step) and
        // then counts its own occurrences.
        let (min_idx, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.counter
                    .estimate()
                    .partial_cmp(&b.counter.estimate())
                    .expect("estimates are not NaN")
            })
            .expect("slots non-empty at capacity");
        let s = &mut self.slots[min_idx];
        s.item = item;
        s.counter.increment_by(weight, rng);
        s.touched = epoch;
    }

    /// Closes the current epoch: every item **not** offered since the
    /// previous `decay` call is evicted (its slot freed, its counter
    /// dropped) and returned. Items still arriving keep their counters,
    /// so a persistently hot key's estimate survives any number of
    /// decays while a key that went cold disappears after one quiet
    /// epoch — exactly the signal tier demotion needs.
    pub fn decay(&mut self) -> Vec<u64> {
        let closing = self.epoch;
        self.epoch += 1;
        let mut evicted = Vec::new();
        self.slots.retain(|s| {
            if s.touched == closing {
                true
            } else {
                evicted.push(s.item);
                false
            }
        });
        evicted
    }

    /// The current epoch (number of [`SpaceSaving::decay`] calls so far).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current heavy-hitter report, sorted by descending estimate.
    #[must_use]
    pub fn report(&self) -> Vec<HeavyHitter> {
        let mut out: Vec<HeavyHitter> = self
            .slots
            .iter()
            .map(|s| HeavyHitter {
                item: s.item,
                estimate: s.counter.estimate(),
            })
            .collect();
        out.sort_by(|a, b| b.estimate.partial_cmp(&a.estimate).expect("no NaN"));
        out
    }

    /// The estimate for `item` if it is currently monitored.
    #[must_use]
    pub fn estimate(&self, item: u64) -> Option<f64> {
        self.slots
            .iter()
            .find(|s| s.item == item)
            .map(|s| s.counter.estimate())
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact number of items offered (diagnostics).
    #[must_use]
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Total register bits across slot counters (excludes item ids,
    /// which every heavy-hitter algorithm must store).
    #[must_use]
    pub fn counter_state_bits(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| ac_bitio::StateBits::state_bits(&s.counter))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, MorrisPlus};
    use ac_randkit::{Xoshiro256PlusPlus, Zipf};

    fn zipf_stream(n: usize, universe: u64, s: f64, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let z = Zipf::new(universe, s).unwrap();
        (0..n).map(|_| z.sample(&mut rng)).collect()
    }

    #[test]
    fn exact_spacesaving_finds_the_head() {
        let stream = zipf_stream(100_000, 1_000, 1.3, 1);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut ss = SpaceSaving::new(32, &ExactCounter::new());
        for &x in &stream {
            ss.offer(x, &mut rng);
        }
        let report = ss.report();
        // Zipf(1.3) head: items 1..=3 dominate; they must be reported on
        // top in order.
        assert_eq!(report[0].item, 1);
        assert!(report.iter().take(5).any(|h| h.item == 2));
        assert!(report.iter().take(5).any(|h| h.item == 3));
    }

    #[test]
    fn exact_spacesaving_overestimate_bound() {
        // Classical guarantee: estimate − true ≤ n/k.
        let stream = zipf_stream(50_000, 500, 1.2, 3);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let k = 64;
        let mut ss = SpaceSaving::new(k, &ExactCounter::new());
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            ss.offer(x, &mut rng);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let bound = stream.len() as f64 / k as f64;
        for h in ss.report() {
            let t = *truth.get(&h.item).unwrap_or(&0) as f64;
            assert!(
                h.estimate - t <= bound + 1e-9,
                "item {}: est {} true {t} bound {bound}",
                h.item,
                h.estimate
            );
            assert!(h.estimate >= t, "SpaceSaving never underestimates");
        }
    }

    #[test]
    fn morris_spacesaving_finds_the_head_in_less_space() {
        let stream = zipf_stream(200_000, 2_000, 1.3, 5);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let k = 32;

        let mut exact = SpaceSaving::new(k, &ExactCounter::new());
        let mut approx = SpaceSaving::new(k, &MorrisPlus::new(0.1, 8).unwrap());
        for &x in &stream {
            exact.offer(x, &mut rng);
            approx.offer(x, &mut rng);
        }
        // Same top item.
        assert_eq!(exact.report()[0].item, 1);
        assert_eq!(approx.report()[0].item, 1);
        // The head estimate is within ~(1±3ε) of the exact one.
        let e = exact.report()[0].estimate;
        let a = approx.report()[0].estimate;
        assert!((a - e).abs() / e < 0.3, "exact {e} vs approx {a}");
    }

    #[test]
    fn estimate_lookup_only_for_monitored_items() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut ss = SpaceSaving::new(2, &ExactCounter::new());
        ss.offer(10, &mut rng);
        ss.offer(10, &mut rng);
        ss.offer(20, &mut rng);
        assert_eq!(ss.estimate(10), Some(2.0));
        assert_eq!(ss.estimate(20), Some(1.0));
        assert_eq!(ss.estimate(99), None);
        // Evicting 20 (the min) for 30: inherits count 1, then +1 = 2.
        ss.offer(30, &mut rng);
        assert_eq!(ss.estimate(30), Some(2.0));
        assert_eq!(ss.estimate(20), None);
    }

    #[test]
    fn decay_evicts_only_keys_that_went_quiet() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut ss = SpaceSaving::new(8, &ExactCounter::new());
        for _ in 0..100 {
            ss.offer(1, &mut rng);
            ss.offer(2, &mut rng);
        }
        assert_eq!(ss.epoch(), 0);
        // Epoch 1: only key 1 keeps arriving.
        let evicted = ss.decay();
        assert!(evicted.is_empty(), "both keys were live in epoch 0");
        for _ in 0..50 {
            ss.offer(1, &mut rng);
        }
        // Closing epoch 1 drops key 2 (quiet all epoch) but key 1
        // survives with its estimate intact.
        let evicted = ss.decay();
        assert_eq!(evicted, vec![2]);
        assert_eq!(ss.epoch(), 2);
        assert_eq!(ss.estimate(1), Some(150.0));
        assert_eq!(ss.estimate(2), None);
    }

    #[test]
    fn decay_frees_capacity_for_the_next_window() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut ss = SpaceSaving::new(2, &ExactCounter::new());
        for _ in 0..1_000 {
            ss.offer(7, &mut rng);
            ss.offer(8, &mut rng);
        }
        // Without decay a newcomer would *inherit* a 1000-count slot.
        // After decay both stale slots are gone, so the newcomer starts
        // from a fresh counter.
        ss.decay();
        ss.decay();
        ss.offer(9, &mut rng);
        assert_eq!(ss.estimate(9), Some(1.0));
        assert_eq!(ss.estimate(7), None);
    }

    #[test]
    fn counter_bits_shrink_with_morris() {
        // Per-slot Morris(0.3) levels reach ≈ ln(1 + 0.3·f)/ln(1.3)
        // ≈ 35 (6 bits) where exact slots need ≈ 15 bits.
        let stream = zipf_stream(500_000, 100, 0.8, 8);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let k = 16;
        let mut exact = SpaceSaving::new(k, &ExactCounter::new());
        let mut approx = SpaceSaving::new(k, &ac_core::MorrisCounter::new(0.3).unwrap());
        for &x in &stream {
            exact.offer(x, &mut rng);
            approx.offer(x, &mut rng);
        }
        assert!(
            approx.counter_state_bits() < exact.counter_state_bits() / 2,
            "morris {} vs exact {}",
            approx.counter_state_bits(),
            exact.counter_state_bits()
        );
    }
}
