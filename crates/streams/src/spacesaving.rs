//! SpaceSaving heavy hitters, generic over the counter type ([BDW19]
//! flavor).
//!
//! The paper cites "ℓ₁ heavy hitters in insertion-only streams" as an
//! application of approximate counting. [`SpaceSaving`] is the classical
//! Metwally–Agrawal–El Abbadi algorithm with its per-slot counters
//! abstracted: [`ExactCounter`](ac_core::ExactCounter) recovers the
//! textbook algorithm, Morris-family counters give the small-space
//! variant where each slot stores `O(log log n)` bits instead of
//! `O(log n)`.

use ac_core::ApproxCounter;
use ac_randkit::RandomSource;

/// A reported heavy hitter.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitter {
    /// The item.
    pub item: u64,
    /// Its estimated count (an overestimate by at most the minimum slot
    /// value, as in classical SpaceSaving).
    pub estimate: f64,
}

/// SpaceSaving with `k` slots over a `u64` item universe.
///
/// Guarantee (with exact counters): any item with true frequency
/// `> n/k` is present, and every estimate overshoots by at most `n/k`.
/// With `(1±ε)`-approximate counters both statements degrade by a
/// `(1±ε)` factor.
#[derive(Debug, Clone)]
pub struct SpaceSaving<C> {
    /// Monitored items and their counters; kept unsorted (k is small).
    slots: Vec<(u64, C)>,
    capacity: usize,
    template: C,
    /// Exact stream length (diagnostics only).
    items_seen: u64,
}

impl<C: ApproxCounter + Clone> SpaceSaving<C> {
    /// Creates a summary with `capacity` slots; per-slot counters clone
    /// `template` (freshly reset).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, template: &C) -> Self {
        assert!(capacity > 0, "need at least one slot");
        let mut fresh = template.clone();
        fresh.reset();
        Self {
            slots: Vec::with_capacity(capacity),
            capacity,
            template: fresh,
            items_seen: 0,
        }
    }

    /// Processes one stream item.
    pub fn offer(&mut self, item: u64, rng: &mut dyn RandomSource) {
        self.items_seen += 1;
        if let Some((_, c)) = self.slots.iter_mut().find(|(i, _)| *i == item) {
            c.increment(rng);
            return;
        }
        if self.slots.len() < self.capacity {
            let mut c = self.template.clone();
            c.increment(rng);
            self.slots.push((item, c));
            return;
        }
        // Evict the slot with the smallest estimate; the newcomer
        // *inherits* its counter (the SpaceSaving "min + 1" step) and
        // then counts its own occurrence.
        let (min_idx, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by(|(_, (_, a)), (_, (_, b))| {
                a.estimate()
                    .partial_cmp(&b.estimate())
                    .expect("estimates are not NaN")
            })
            .expect("slots non-empty at capacity");
        self.slots[min_idx].0 = item;
        self.slots[min_idx].1.increment(rng);
    }

    /// Current heavy-hitter report, sorted by descending estimate.
    #[must_use]
    pub fn report(&self) -> Vec<HeavyHitter> {
        let mut out: Vec<HeavyHitter> = self
            .slots
            .iter()
            .map(|(item, c)| HeavyHitter {
                item: *item,
                estimate: c.estimate(),
            })
            .collect();
        out.sort_by(|a, b| b.estimate.partial_cmp(&a.estimate).expect("no NaN"));
        out
    }

    /// The estimate for `item` if it is currently monitored.
    #[must_use]
    pub fn estimate(&self, item: u64) -> Option<f64> {
        self.slots
            .iter()
            .find(|(i, _)| *i == item)
            .map(|(_, c)| c.estimate())
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact number of items offered (diagnostics).
    #[must_use]
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Total register bits across slot counters (excludes item ids,
    /// which every heavy-hitter algorithm must store).
    #[must_use]
    pub fn counter_state_bits(&self) -> u64 {
        self.slots
            .iter()
            .map(|(_, c)| ac_bitio::StateBits::state_bits(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_core::{ExactCounter, MorrisPlus};
    use ac_randkit::{Xoshiro256PlusPlus, Zipf};

    fn zipf_stream(n: usize, universe: u64, s: f64, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let z = Zipf::new(universe, s).unwrap();
        (0..n).map(|_| z.sample(&mut rng)).collect()
    }

    #[test]
    fn exact_spacesaving_finds_the_head() {
        let stream = zipf_stream(100_000, 1_000, 1.3, 1);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut ss = SpaceSaving::new(32, &ExactCounter::new());
        for &x in &stream {
            ss.offer(x, &mut rng);
        }
        let report = ss.report();
        // Zipf(1.3) head: items 1..=3 dominate; they must be reported on
        // top in order.
        assert_eq!(report[0].item, 1);
        assert!(report.iter().take(5).any(|h| h.item == 2));
        assert!(report.iter().take(5).any(|h| h.item == 3));
    }

    #[test]
    fn exact_spacesaving_overestimate_bound() {
        // Classical guarantee: estimate − true ≤ n/k.
        let stream = zipf_stream(50_000, 500, 1.2, 3);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let k = 64;
        let mut ss = SpaceSaving::new(k, &ExactCounter::new());
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            ss.offer(x, &mut rng);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let bound = stream.len() as f64 / k as f64;
        for h in ss.report() {
            let t = *truth.get(&h.item).unwrap_or(&0) as f64;
            assert!(
                h.estimate - t <= bound + 1e-9,
                "item {}: est {} true {t} bound {bound}",
                h.item,
                h.estimate
            );
            assert!(h.estimate >= t, "SpaceSaving never underestimates");
        }
    }

    #[test]
    fn morris_spacesaving_finds_the_head_in_less_space() {
        let stream = zipf_stream(200_000, 2_000, 1.3, 5);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let k = 32;

        let mut exact = SpaceSaving::new(k, &ExactCounter::new());
        let mut approx = SpaceSaving::new(k, &MorrisPlus::new(0.1, 8).unwrap());
        for &x in &stream {
            exact.offer(x, &mut rng);
            approx.offer(x, &mut rng);
        }
        // Same top item.
        assert_eq!(exact.report()[0].item, 1);
        assert_eq!(approx.report()[0].item, 1);
        // The head estimate is within ~(1±3ε) of the exact one.
        let e = exact.report()[0].estimate;
        let a = approx.report()[0].estimate;
        assert!((a - e).abs() / e < 0.3, "exact {e} vs approx {a}");
    }

    #[test]
    fn estimate_lookup_only_for_monitored_items() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut ss = SpaceSaving::new(2, &ExactCounter::new());
        ss.offer(10, &mut rng);
        ss.offer(10, &mut rng);
        ss.offer(20, &mut rng);
        assert_eq!(ss.estimate(10), Some(2.0));
        assert_eq!(ss.estimate(20), Some(1.0));
        assert_eq!(ss.estimate(99), None);
        // Evicting 20 (the min) for 30: inherits count 1, then +1 = 2.
        ss.offer(30, &mut rng);
        assert_eq!(ss.estimate(30), Some(2.0));
        assert_eq!(ss.estimate(20), None);
    }

    #[test]
    fn counter_bits_shrink_with_morris() {
        // Per-slot Morris(0.3) levels reach ≈ ln(1 + 0.3·f)/ln(1.3)
        // ≈ 35 (6 bits) where exact slots need ≈ 15 bits.
        let stream = zipf_stream(500_000, 100, 0.8, 8);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let k = 16;
        let mut exact = SpaceSaving::new(k, &ExactCounter::new());
        let mut approx = SpaceSaving::new(k, &ac_core::MorrisCounter::new(0.3).unwrap());
        for &x in &stream {
            exact.offer(x, &mut rng);
            approx.offer(x, &mut rng);
        }
        assert!(
            approx.counter_state_bits() < exact.counter_state_bits() / 2,
            "morris {} vs exact {}",
            approx.counter_state_bits(),
            exact.counter_state_bits()
        );
    }
}
