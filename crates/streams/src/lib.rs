//! # `ac-streams` — streaming applications of approximate counting
//!
//! The paper motivates approximate counting through the systems that
//! consume it: "an analytics system may maintain many such counters (for
//! example, the number of visits to each page on Wikipedia)", and the
//! streaming algorithms that use a counter as a subroutine — frequency
//! moments \[AMS99, GS09\], approximate reservoir sampling \[GS09\], and
//! heavy hitters \[BDW19\]. This crate builds those consumers on top of
//! `ac-core`:
//!
//! * [`CounterArray`] — a fixed universe of `M` approximate counters with
//!   bulk memory accounting and bit-exact packing into an Elias-δ coded
//!   [`BitVec`](ac_bitio::BitVec). This is the `δ ≪ 1/M` regime where the
//!   paper's `log log(1/δ)` (vs. the classical `log(1/δ)`) matters.
//! * [`ApproxCountingDict`] — hash-keyed counters for open universes.
//! * [`AmsMomentEstimator`] — AMS frequency-moment estimation (`F_k`)
//!   with Morris counters maintaining the suffix counts, the \[GS09\]
//!   construction.
//! * [`ApproxReservoir`] — reservoir sampling driven by an approximate
//!   stream-length counter \[GS09\].
//! * [`SpaceSaving`] — heavy hitters, generic over the counter type
//!   ([`ExactCounter`](ac_core::ExactCounter) recovers the classical
//!   algorithm; Morris counters give the \[BDW19\]-flavored small-space
//!   variant).
//! * [`CountMinSketch`] — per-key frequencies over implicit key sets,
//!   with approximate-counter cells shrinking every cell from
//!   `O(log n)` to `O(log log n)` bits.
//! * [`RegisterFile`] — `M` single-register counters stored in exactly
//!   `M × B` bits of real bit-addressed memory, with read-modify-write
//!   increments (the hardware-shaped deployment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod countmin;
mod dict;
mod moments;
mod pack;
mod registers;
mod reservoir;
mod spacesaving;

pub use array::CounterArray;
pub use countmin::CountMinSketch;
pub use dict::ApproxCountingDict;
pub use moments::{exact_frequency_moment, AmsMomentEstimator};
pub use pack::PackState;
pub use registers::{RegisterCounter, RegisterFile};
pub use reservoir::ApproxReservoir;
pub use spacesaving::{HeavyHitter, SpaceSaving};
