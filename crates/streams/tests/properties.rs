//! Property-based tests for the streaming applications.

use ac_bitio::{BitReader, BitVec, BitWriter};
use ac_core::{ApproxCounter, CsurosCounter, MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams};
use ac_randkit::Xoshiro256PlusPlus;
use ac_streams::{CountMinSketch, CounterArray, PackState, RegisterFile, SpaceSaving};
use proptest::prelude::*;

proptest! {
    /// Counter arrays pack/unpack to identical estimates for arbitrary
    /// fill patterns.
    #[test]
    fn array_pack_round_trips(seed in any::<u64>(), loads in prop::collection::vec(0u64..100_000, 1..24)) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let template = MorrisCounter::new(0.1).unwrap();
        let mut array = CounterArray::new(&template, loads.len());
        for (k, &n) in loads.iter().enumerate() {
            array.increment_by(k, n, &mut rng);
        }
        let packed = array.pack();
        let restored = CounterArray::unpack(&template, loads.len(), &packed);
        for k in 0..loads.len() {
            prop_assert_eq!(array.estimate(k), restored.estimate(k));
        }
    }

    /// Every PackState implementor's length accounting is exact, for
    /// arbitrary state.
    #[test]
    fn packed_bits_accounting_exact(seed in any::<u64>(), n in 0u64..200_000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let p = NyParams::new(0.25, 8).unwrap();
        let counters: Vec<Box<dyn PackStateDyn>> = vec![
            Box::new(with_n(MorrisCounter::new(0.2).unwrap(), n, &mut rng)),
            Box::new(with_n(CsurosCounter::new(7).unwrap(), n, &mut rng)),
            Box::new(with_n(MorrisPlus::new(0.2, 8).unwrap(), n, &mut rng)),
            Box::new(with_n(NelsonYuCounter::new(p), n, &mut rng)),
        ];
        for c in counters {
            let mut bits = BitVec::new();
            c.pack_dyn(&mut BitWriter::new(&mut bits));
            prop_assert_eq!(bits.len(), c.bits_dyn());
        }
    }

    /// The register file is value-faithful: writing any in-range register
    /// and reading it back via estimate matches the standalone counter.
    #[test]
    fn register_file_slots_faithful(keys in prop::collection::vec(0usize..16, 1..50), seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let template = MorrisCounter::classic();
        let mut file = RegisterFile::new(&template, 16, 12);
        let mut mirror: Vec<u64> = vec![0; 16];
        // Apply the same increment sequence to packed slots and to a
        // mirrored level array (classic Morris: level ≤ increments, so
        // 12-bit slots cannot clamp at these sizes).
        for &k in &keys {
            file.increment(k, &mut rng);
            mirror[k] += 1;
        }
        for (k, &hits) in mirror.iter().enumerate() {
            // Level can never exceed the number of increments that hit
            // the slot.
            let est = file.estimate(k);
            let bound = (2f64.powi(hits as i32) - 1.0).max(0.0);
            prop_assert!(est <= bound, "slot {k}: est {est} > bound {bound}");
        }
    }

    /// Count-Min with exact cells never underestimates, regardless of
    /// stream composition.
    #[test]
    fn countmin_never_underestimates(stream in prop::collection::vec(0u64..50, 1..400), seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut cm = CountMinSketch::new(32, 3, seed, &ac_core::ExactCounter::new());
        let mut truth = std::collections::HashMap::<u64, u64>::new();
        for &x in &stream {
            cm.offer(x, &mut rng);
            *truth.entry(x).or_insert(0) += 1;
        }
        for (&k, &t) in &truth {
            prop_assert!(cm.estimate(k) >= t as f64);
        }
    }

    /// SpaceSaving with exact counters keeps its classical overestimate
    /// bound n/k for any stream.
    #[test]
    fn spacesaving_bound_holds(stream in prop::collection::vec(0u64..100, 1..500), slots in 2usize..20) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut ss = SpaceSaving::new(slots, &ac_core::ExactCounter::new());
        let mut truth = std::collections::HashMap::<u64, u64>::new();
        for &x in &stream {
            ss.offer(x, &mut rng);
            *truth.entry(x).or_insert(0) += 1;
        }
        let bound = stream.len() as f64 / slots as f64;
        for h in ss.report() {
            let t = *truth.get(&h.item).unwrap_or(&0) as f64;
            prop_assert!(h.estimate >= t, "never underestimates");
            prop_assert!(h.estimate - t <= bound + 1e-9, "overestimate bound");
        }
    }
}

/// Object-safe shim over PackState for the heterogeneous test.
trait PackStateDyn {
    fn pack_dyn(&self, w: &mut BitWriter<'_>);
    fn bits_dyn(&self) -> u64;
}

impl<T: PackState> PackStateDyn for T {
    fn pack_dyn(&self, w: &mut BitWriter<'_>) {
        self.pack_state(w);
    }

    fn bits_dyn(&self) -> u64 {
        self.packed_bits()
    }
}

fn with_n<C: ApproxCounter>(mut c: C, n: u64, rng: &mut Xoshiro256PlusPlus) -> C {
    c.increment_by(n, rng);
    c
}

#[test]
fn register_file_reader_shim_compiles() {
    // Non-proptest smoke covering BitReader import usage.
    let mut v = BitVec::new();
    v.push_bits(5, 4);
    let mut r = BitReader::new(&v);
    assert_eq!(r.read_bits(4), 5);
}
