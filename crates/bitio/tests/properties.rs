//! Property-based tests for bit-level storage and codes.

use ac_bitio::codes::{
    decode_delta, decode_gamma, decode_rice, decode_unary, delta_len, encode_delta, encode_gamma,
    encode_rice, encode_unary, gamma_len, rice_len,
};
use ac_bitio::{bit_len, ceil_log2, BitReader, BitVec, BitWriter};
use proptest::prelude::*;

proptest! {
    /// Arbitrary (value, width) sequences round-trip through the bit
    /// vector, regardless of word-boundary alignment.
    #[test]
    fn bitvec_round_trip(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 1..50)) {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            for &(value, width) in &fields {
                let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
                w.write_bits(masked, width);
            }
        }
        let mut r = BitReader::new(&v);
        for &(value, width) in &fields {
            let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
            prop_assert_eq!(r.read_bits(width), masked);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Mixed streams of γ, δ, Rice and unary codes round-trip.
    #[test]
    fn codes_round_trip(values in prop::collection::vec(1u64..u64::MAX, 1..30), k in 0u32..20) {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            for &x in &values {
                encode_gamma(&mut w, x);
                encode_delta(&mut w, x);
                encode_rice(&mut w, x % 10_000, k); // keep unary part bounded
                encode_unary(&mut w, x % 64 + 1);
            }
        }
        let mut r = BitReader::new(&v);
        for &x in &values {
            prop_assert_eq!(decode_gamma(&mut r), x);
            prop_assert_eq!(decode_delta(&mut r), x);
            prop_assert_eq!(decode_rice(&mut r, k), x % 10_000);
            prop_assert_eq!(decode_unary(&mut r), x % 64 + 1);
        }
    }

    /// Code-length formulas match the bits actually written.
    #[test]
    fn code_lengths_exact(x in 1u64..u64::MAX, k in 0u32..20) {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_gamma(&mut w, x);
        }
        prop_assert_eq!(v.len(), u64::from(gamma_len(x)));

        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_delta(&mut w, x);
        }
        prop_assert_eq!(v.len(), u64::from(delta_len(x)));

        let small = x % 100_000;
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_rice(&mut w, small, k);
        }
        prop_assert_eq!(v.len(), rice_len(small, k));
    }

    /// bit_len is the usual binary digit count; ceil_log2 is its
    /// addressing companion.
    #[test]
    fn width_identities(x in 1u64..u64::MAX / 2) {
        prop_assert_eq!(bit_len(x), (x as f64).log2().floor() as u32 + 1);
        prop_assert!(ceil_log2(x) <= bit_len(x));
        // 2^(ceil_log2(x)) >= x.
        if ceil_log2(x) < 64 {
            prop_assert!(1u128 << ceil_log2(x) >= u128::from(x));
        }
    }

    /// Random single-bit writes followed by reads agree.
    #[test]
    fn single_bits_round_trip(bits in prop::collection::vec(any::<bool>(), 1..500)) {
        let mut v = BitVec::new();
        for &b in &bits {
            v.push(b);
        }
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i as u64), b);
        }
    }
}
