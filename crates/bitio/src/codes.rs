//! Self-delimiting integer codes: unary, Elias γ, Elias δ, Golomb–Rice.
//!
//! Approximate counter states are *variable width* — that is the entire
//! point of the paper — so storing many of them densely requires
//! self-delimiting encodings. `CounterArray::pack` (in `ac-streams`) uses
//! Elias δ by default; the other codes are provided for the packing
//! ablation in `EXPERIMENTS.md` (E9).
//!
//! All encoders operate on values `x ≥ 1`; use [`encode_gamma0`]-style
//! wrappers (which shift by one) for zero-based values. Code lengths:
//!
//! | code | length for value `x` |
//! |------|----------------------|
//! | unary | `x` bits |
//! | Elias γ | `2⌊log₂x⌋ + 1` bits |
//! | Elias δ | `⌊log₂x⌋ + 2⌊log₂(⌊log₂x⌋+1)⌋ + 1` bits |
//! | Rice(k) | `x/2ᵏ + 1 + k` bits |

use crate::{bit_len, BitReader, BitWriter};

/// Appends the unary code of `x ≥ 1`: `x-1` zeros followed by a one.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn encode_unary(w: &mut BitWriter<'_>, x: u64) {
    assert!(x >= 1, "unary code requires x >= 1");
    for _ in 0..(x - 1) {
        w.write_bit(false);
    }
    w.write_bit(true);
}

/// Decodes a unary code.
///
/// # Panics
///
/// Panics if the reader runs out of bits before the terminating one.
pub fn decode_unary(r: &mut BitReader<'_>) -> u64 {
    let mut x = 1u64;
    while !r.read_bit() {
        x += 1;
    }
    x
}

/// Appends the Elias γ code of `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn encode_gamma(w: &mut BitWriter<'_>, x: u64) {
    assert!(x >= 1, "Elias gamma requires x >= 1");
    let n = bit_len(x); // number of binary digits of x
                        // n-1 zeros, then the n digits of x starting from the MSB (which is 1).
    for _ in 0..(n - 1) {
        w.write_bit(false);
    }
    // Write MSB-first so the leading 1 terminates the zero run.
    for i in (0..n).rev() {
        w.write_bit((x >> i) & 1 == 1);
    }
}

/// Decodes an Elias γ code.
///
/// # Panics
///
/// Panics on truncated input.
pub fn decode_gamma(r: &mut BitReader<'_>) -> u64 {
    let mut zeros = 0u32;
    while !r.read_bit() {
        zeros += 1;
        assert!(zeros < 64, "gamma code zero-run too long (corrupt input)");
    }
    // We consumed the leading 1; read the remaining `zeros` digits.
    let mut x = 1u64;
    for _ in 0..zeros {
        x = (x << 1) | u64::from(r.read_bit());
    }
    x
}

/// Appends the Elias δ code of `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn encode_delta(w: &mut BitWriter<'_>, x: u64) {
    assert!(x >= 1, "Elias delta requires x >= 1");
    let n = bit_len(x);
    // Gamma-code the digit count, then the digits of x minus its MSB.
    encode_gamma(w, u64::from(n));
    for i in (0..n - 1).rev() {
        w.write_bit((x >> i) & 1 == 1);
    }
}

/// Decodes an Elias δ code.
///
/// # Panics
///
/// Panics on truncated or corrupt input.
pub fn decode_delta(r: &mut BitReader<'_>) -> u64 {
    let n = decode_gamma(r);
    assert!((1..=64).contains(&n), "delta digit count {n} corrupt");
    let mut x = 1u64;
    for _ in 0..(n - 1) {
        x = (x << 1) | u64::from(r.read_bit());
    }
    x
}

/// Appends the Golomb–Rice code of `x ≥ 0` with parameter `k`
/// (quotient in unary, remainder in `k` binary bits).
///
/// # Panics
///
/// Panics if `k > 63`.
pub fn encode_rice(w: &mut BitWriter<'_>, x: u64, k: u32) {
    assert!(k <= 63, "rice parameter must be at most 63");
    let q = x >> k;
    for _ in 0..q {
        w.write_bit(false);
    }
    w.write_bit(true);
    if k > 0 {
        w.write_bits(x & ((1u64 << k) - 1), k);
    }
}

/// Decodes a Golomb–Rice code with parameter `k`.
///
/// # Panics
///
/// Panics on truncated input or if `k > 63`.
pub fn decode_rice(r: &mut BitReader<'_>, k: u32) -> u64 {
    assert!(k <= 63, "rice parameter must be at most 63");
    let mut q = 0u64;
    while !r.read_bit() {
        q += 1;
    }
    let rem = if k > 0 { r.read_bits(k) } else { 0 };
    (q << k) | rem
}

/// Checked variant of [`decode_gamma`]: `None` on truncated or
/// structurally impossible input instead of a panic — for parsing bits
/// whose provenance is untrusted (e.g. checkpoint payloads).
pub fn try_decode_gamma(r: &mut BitReader<'_>) -> Option<u64> {
    let mut zeros = 0u32;
    loop {
        if r.remaining() == 0 {
            return None;
        }
        if r.read_bit() {
            break;
        }
        zeros += 1;
        if zeros >= 64 {
            return None;
        }
    }
    if r.remaining() < u64::from(zeros) {
        return None;
    }
    let mut x = 1u64;
    for _ in 0..zeros {
        x = (x << 1) | u64::from(r.read_bit());
    }
    Some(x)
}

/// Checked variant of [`decode_delta`]: `None` instead of a panic.
pub fn try_decode_delta(r: &mut BitReader<'_>) -> Option<u64> {
    let n = try_decode_gamma(r)?;
    if !(1..=64).contains(&n) {
        return None;
    }
    if r.remaining() < n - 1 {
        return None;
    }
    let mut x = 1u64;
    for _ in 0..(n - 1) {
        x = (x << 1) | u64::from(r.read_bit());
    }
    Some(x)
}

/// Checked variant of [`decode_delta0`]: `None` instead of a panic.
pub fn try_decode_delta0(r: &mut BitReader<'_>) -> Option<u64> {
    try_decode_delta(r).map(|x| x - 1)
}

/// Elias γ for zero-based values (encodes `x + 1`).
pub fn encode_gamma0(w: &mut BitWriter<'_>, x: u64) {
    assert!(x < u64::MAX, "gamma0 domain is 0..u64::MAX-1");
    encode_gamma(w, x + 1);
}

/// Inverse of [`encode_gamma0`].
pub fn decode_gamma0(r: &mut BitReader<'_>) -> u64 {
    decode_gamma(r) - 1
}

/// Elias δ for zero-based values (encodes `x + 1`).
pub fn encode_delta0(w: &mut BitWriter<'_>, x: u64) {
    assert!(x < u64::MAX, "delta0 domain is 0..u64::MAX-1");
    encode_delta(w, x + 1);
}

/// Inverse of [`encode_delta0`].
pub fn decode_delta0(r: &mut BitReader<'_>) -> u64 {
    decode_delta(r) - 1
}

/// Length in bits of the Elias γ code for `x ≥ 1`.
#[must_use]
pub fn gamma_len(x: u64) -> u32 {
    assert!(x >= 1);
    2 * bit_len(x) - 1
}

/// Length in bits of the Elias δ code for `x ≥ 1`.
#[must_use]
pub fn delta_len(x: u64) -> u32 {
    assert!(x >= 1);
    let n = bit_len(x);
    (n - 1) + gamma_len(u64::from(n))
}

/// Length in bits of the Rice(`k`) code for `x ≥ 0`.
#[must_use]
pub fn rice_len(x: u64, k: u32) -> u64 {
    (x >> k) + 1 + u64::from(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    fn round_trip<E, D>(values: &[u64], encode: E, decode: D)
    where
        E: Fn(&mut BitWriter<'_>, u64),
        D: Fn(&mut BitReader<'_>) -> u64,
    {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            for &x in values {
                encode(&mut w, x);
            }
        }
        let mut r = BitReader::new(&v);
        for &x in values {
            assert_eq!(decode(&mut r), x);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unary_round_trip() {
        round_trip(&[1, 2, 3, 10, 1, 7], encode_unary, decode_unary);
    }

    #[test]
    fn gamma_round_trip() {
        let values: Vec<u64> = (1..=300)
            .chain([1 << 20, (1 << 40) + 12_345, u64::MAX / 2])
            .collect();
        round_trip(&values, encode_gamma, decode_gamma);
    }

    #[test]
    fn delta_round_trip() {
        let values: Vec<u64> = (1..=300)
            .chain([1 << 20, (1 << 40) + 999, u64::MAX])
            .collect();
        round_trip(&values, encode_delta, decode_delta);
    }

    #[test]
    fn rice_round_trip_various_k() {
        for k in [0u32, 1, 3, 8, 16] {
            round_trip(
                &[0, 1, 2, 5, 100, 1_000],
                |w, x| encode_rice(w, x, k),
                |r| decode_rice(r, k),
            );
        }
    }

    #[test]
    fn zero_based_wrappers() {
        round_trip(&[0, 1, 2, 42, 1 << 33], encode_gamma0, decode_gamma0);
        round_trip(&[0, 1, 2, 42, 1 << 33], encode_delta0, decode_delta0);
    }

    #[test]
    fn gamma_lengths_match_formula_and_encoding() {
        for x in (1..200).chain([1 << 10, 1 << 30]) {
            let mut v = BitVec::new();
            encode_gamma(&mut BitWriter::new(&mut v), x);
            assert_eq!(v.len(), u64::from(gamma_len(x)), "x={x}");
        }
    }

    #[test]
    fn delta_lengths_match_formula_and_encoding() {
        for x in (1..200).chain([1 << 10, 1 << 30, u64::MAX]) {
            let mut v = BitVec::new();
            encode_delta(&mut BitWriter::new(&mut v), x);
            assert_eq!(v.len(), u64::from(delta_len(x)), "x={x}");
        }
    }

    #[test]
    fn rice_lengths_match_formula() {
        for &(x, k) in &[(0u64, 0u32), (5, 2), (100, 4), (1_000, 8)] {
            let mut v = BitVec::new();
            encode_rice(&mut BitWriter::new(&mut v), x, k);
            assert_eq!(v.len(), rice_len(x, k), "x={x} k={k}");
        }
    }

    #[test]
    fn delta_beats_gamma_for_large_values() {
        // δ is asymptotically shorter: check a representative large value.
        let x = 1u64 << 40;
        assert!(delta_len(x) < gamma_len(x));
    }

    #[test]
    fn known_gamma_codewords() {
        // γ(1) = "1", γ(2) = "010", γ(3) = "011" (MSB-first digits).
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_gamma(&mut w, 1);
            encode_gamma(&mut w, 2);
        }
        // First bit: 1. Then 0,1,0 for the value 2.
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(2));
        assert!(!v.get(3));
        assert_eq!(v.len(), 4);
    }

    #[test]
    #[should_panic(expected = "requires x >= 1")]
    fn gamma_rejects_zero() {
        let mut v = BitVec::new();
        encode_gamma(&mut BitWriter::new(&mut v), 0);
    }

    #[test]
    fn checked_decoders_match_panicking_ones_on_valid_input() {
        let values: Vec<u64> = (1..=100)
            .chain([1 << 20, (1 << 40) + 7, u64::MAX])
            .collect();
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            for &x in &values {
                encode_gamma(&mut w, x.min(u64::MAX / 2));
                encode_delta(&mut w, x);
                encode_delta0(&mut w, x - 1);
            }
        }
        let mut r = BitReader::new(&v);
        for &x in &values {
            assert_eq!(try_decode_gamma(&mut r), Some(x.min(u64::MAX / 2)));
            assert_eq!(try_decode_delta(&mut r), Some(x));
            assert_eq!(try_decode_delta0(&mut r), Some(x - 1));
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn checked_decoders_reject_truncation_and_garbage() {
        // Truncated: a zero-run with no terminating one.
        let mut v = BitVec::new();
        for _ in 0..10 {
            v.push(false);
        }
        assert_eq!(try_decode_gamma(&mut BitReader::new(&v)), None);
        assert_eq!(try_decode_delta(&mut BitReader::new(&v)), None);

        // Empty input.
        let empty = BitVec::new();
        assert_eq!(try_decode_gamma(&mut BitReader::new(&empty)), None);

        // A γ code whose digit tail is cut off.
        let mut v = BitVec::new();
        encode_gamma(&mut BitWriter::new(&mut v), 1 << 30);
        let mut cut = BitVec::new();
        for i in 0..(v.len() / 2) {
            cut.push(v.get(i));
        }
        assert_eq!(try_decode_gamma(&mut BitReader::new(&cut)), None);

        // A structurally impossible zero-run (>= 64 zeros then a one).
        let mut v = BitVec::new();
        for _ in 0..80 {
            v.push(false);
        }
        v.push(true);
        assert_eq!(try_decode_gamma(&mut BitReader::new(&v)), None);
    }
}
