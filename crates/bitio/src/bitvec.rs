//! A growable bit vector with sequential writer/reader views.

/// A growable, bit-addressed vector backed by `u64` words.
///
/// Bits are addressed LSB-first within each word; multi-bit fields are
/// written least-significant-bit first, so `write_bits(x, w)` followed by
/// `read_bits(w)` round-trips any `w ≤ 64` bit value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    /// Total number of valid bits.
    len: u64,
}

impl BitVec {
    /// Creates an empty bit vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with capacity for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: u64) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64) as usize),
            len: 0,
        }
    }

    /// Number of bits stored.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no bits are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes reserved by the backing storage (for capacity
    /// accounting).
    #[must_use]
    pub fn backing_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Appends a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = (self.len / 64) as usize;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width must be at most 64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        let word = (self.len / 64) as usize;
        let off = (self.len % 64) as u32;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << off;
        let written = (64 - off).min(width);
        if written < width {
            // Spill the remaining high bits into a fresh word.
            self.words.push(value >> written);
        }
        self.len += u64::from(width);
    }

    /// Reads the bit at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    #[inline]
    #[must_use]
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }

    /// Reads `width` bits starting at `pos`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the range extends past the end.
    #[must_use]
    pub fn get_bits(&self, pos: u64, width: u32) -> u64 {
        assert!(width <= 64, "width must be at most 64");
        if width == 0 {
            return 0;
        }
        assert!(
            pos + u64::from(width) <= self.len,
            "bit range out of bounds"
        );
        let word = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        let lo = self.words[word] >> off;
        let taken = 64 - off;
        let value = if taken >= width {
            lo
        } else {
            lo | (self.words[word + 1] << taken)
        };
        if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        }
    }

    /// Overwrites the bit at position `pos` in place.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    #[inline]
    pub fn overwrite_bit(&mut self, pos: u64, bit: bool) {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        let word = (pos / 64) as usize;
        let mask = 1u64 << (pos % 64);
        if bit {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
    }

    /// Overwrites `width` bits starting at `pos` in place, LSB first —
    /// the read-modify-write primitive for fixed-width register files.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BitVec::push_bits`], or if
    /// the range extends past the end.
    pub fn overwrite_bits(&mut self, pos: u64, value: u64, width: u32) {
        assert!(width <= 64, "width must be at most 64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        assert!(
            pos + u64::from(width) <= self.len,
            "bit range out of bounds"
        );
        let word = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        let in_first = (64 - off).min(width);
        let first_mask = if in_first == 64 {
            u64::MAX
        } else {
            ((1u64 << in_first) - 1) << off
        };
        self.words[word] = (self.words[word] & !first_mask) | ((value << off) & first_mask);
        if in_first < width {
            let rest = width - in_first;
            let rest_mask = (1u64 << rest) - 1;
            self.words[word + 1] =
                (self.words[word + 1] & !rest_mask) | ((value >> in_first) & rest_mask);
        }
    }

    /// Removes all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Serializes to bytes: the backing words little-endian, trimmed to
    /// `⌈len/8⌉` bytes. Pad bits in the final byte are zero.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_bytes = (self.len.div_ceil(8)) as usize;
        let mut out = Vec::with_capacity(n_bytes);
        'fill: for word in &self.words {
            for b in word.to_le_bytes() {
                if out.len() == n_bytes {
                    break 'fill;
                }
                out.push(b);
            }
        }
        // Mask the pad bits of the last byte so the output is canonical.
        let tail = (self.len % 8) as u32;
        if tail != 0 {
            if let Some(last) = out.last_mut() {
                *last &= (1u8 << tail) - 1;
            }
        }
        out
    }

    /// Rebuilds a bit vector from [`BitVec::to_bytes`] output. The length
    /// is `8 × bytes.len()` — readers are expected to know their own
    /// payload lengths (e.g. from a frame header) and ignore pad bits.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut words = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            words.push(u64::from_le_bytes(buf));
        }
        Self {
            words,
            len: bytes.len() as u64 * 8,
        }
    }

    /// Appends every bit of `other`, preserving order — the splice
    /// primitive that lets independently encoded bit streams (e.g.
    /// per-shard checkpoint sections built on worker threads) be joined
    /// into one frame. When the current length is word-aligned this is a
    /// plain word copy; otherwise each word of `other` is re-pushed at
    /// the misaligned offset.
    pub fn append(&mut self, other: &BitVec) {
        if other.len == 0 {
            return;
        }
        if self.len % 64 == 0 {
            // Fast path: bits above `len` in the last word are always
            // zero (every writer masks), so whole words transplant.
            let words_needed = other.len.div_ceil(64) as usize;
            self.words.extend_from_slice(&other.words[..words_needed]);
            self.len += other.len;
            return;
        }
        let mut remaining = other.len;
        let mut i = 0;
        while remaining > 0 {
            let take = remaining.min(64) as u32;
            let word = other.words[i];
            let value = if take == 64 {
                word
            } else {
                word & ((1u64 << take) - 1)
            };
            self.push_bits(value, take);
            remaining -= u64::from(take);
            i += 1;
        }
    }
}

/// Sequential writer over a [`BitVec`] (append-only cursor).
#[derive(Debug)]
pub struct BitWriter<'a> {
    vec: &'a mut BitVec,
}

impl<'a> BitWriter<'a> {
    /// Creates a writer that appends to `vec`.
    pub fn new(vec: &'a mut BitVec) -> Self {
        Self { vec }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.vec.push(bit);
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Same contract as [`BitVec::push_bits`].
    pub fn write_bits(&mut self, value: u64, width: u32) {
        self.vec.push_bits(value, width);
    }

    /// Bit position of the cursor (== current vector length).
    #[must_use]
    pub fn position(&self) -> u64 {
        self.vec.len()
    }
}

/// Sequential reader over a [`BitVec`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    vec: &'a BitVec,
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader starting at bit 0.
    #[must_use]
    pub fn new(vec: &'a BitVec) -> Self {
        Self { vec, pos: 0 }
    }

    /// Creates a reader starting at bit `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos > vec.len()`.
    #[must_use]
    pub fn at(vec: &'a BitVec, pos: u64) -> Self {
        assert!(pos <= vec.len(), "reader position out of range");
        Self { vec, pos }
    }

    /// Reads one bit, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics at end of data.
    pub fn read_bit(&mut self) -> bool {
        let b = self.vec.get(self.pos);
        self.pos += 1;
        b
    }

    /// Reads `width` bits, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        let v = self.vec.get_bits(self.pos, width);
        self.pos += u64::from(width);
        v
    }

    /// Reads `width` bits if that many remain, `None` otherwise — the
    /// checked form used when parsing untrusted input (e.g. checkpoint
    /// headers), where truncation must surface as an error, not a panic.
    pub fn try_read_bits(&mut self, width: u32) -> Option<u64> {
        if self.remaining() < u64::from(width) {
            return None;
        }
        Some(self.read_bits(width))
    }

    /// Current cursor position in bits.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Bits remaining after the cursor.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.vec.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_single_bits() {
        let mut v = BitVec::new();
        for i in 0..200u64 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        for i in 0..200u64 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn push_bits_round_trip_across_word_boundaries() {
        let mut v = BitVec::new();
        // 13-bit fields misalign against 64-bit words quickly.
        let values: Vec<u64> = (0..500).map(|i| (i * 2_654_435_761u64) % 8_192).collect();
        for &x in &values {
            v.push_bits(x, 13);
        }
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(v.get_bits(i as u64 * 13, 13), x, "field {i}");
        }
    }

    #[test]
    fn push_bits_full_word() {
        let mut v = BitVec::new();
        v.push(true); // misalign by one bit first
        v.push_bits(u64::MAX, 64);
        v.push_bits(0xDEAD_BEEF, 32);
        assert!(v.get(0));
        assert_eq!(v.get_bits(1, 64), u64::MAX);
        assert_eq!(v.get_bits(65, 32), 0xDEAD_BEEF);
    }

    #[test]
    fn zero_width_is_a_noop() {
        let mut v = BitVec::new();
        v.push_bits(0, 0);
        assert_eq!(v.len(), 0);
        assert_eq!(v.get_bits(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_bits_checks_fit() {
        let mut v = BitVec::new();
        v.push_bits(8, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::new();
        let _ = v.get(0);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            w.write_bit(true);
            w.write_bits(0b1011, 4);
            w.write_bits(12_345, 17);
            assert_eq!(w.position(), 22);
        }
        let mut r = BitReader::new(&v);
        assert!(r.read_bit());
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(17), 12_345);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_at_offset() {
        let mut v = BitVec::new();
        v.push_bits(0b101, 3);
        v.push_bits(42, 8);
        let mut r = BitReader::at(&v, 3);
        assert_eq!(r.read_bits(8), 42);
    }

    #[test]
    fn clear_retains_nothing() {
        let mut v = BitVec::new();
        v.push_bits(7, 3);
        v.clear();
        assert!(v.is_empty());
        v.push_bits(0, 3);
        assert_eq!(v.get_bits(0, 3), 0);
    }

    #[test]
    fn overwrite_bit_in_place() {
        let mut v = BitVec::new();
        v.push_bits(0, 10);
        v.overwrite_bit(3, true);
        assert!(v.get(3));
        v.overwrite_bit(3, false);
        assert!(!v.get(3));
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn overwrite_bits_in_place_and_across_words() {
        let mut v = BitVec::new();
        // 10 fields of 13 bits: crosses several word boundaries.
        for _ in 0..10 {
            v.push_bits(0x1FFF, 13);
        }
        for i in 0..10u64 {
            v.overwrite_bits(i * 13, (i * varied(i)) % 8_192, 13);
        }
        for i in 0..10u64 {
            assert_eq!(v.get_bits(i * 13, 13), (i * varied(i)) % 8_192, "field {i}");
        }
        // Neighbors untouched by a single overwrite.
        v.overwrite_bits(3 * 13, 0, 13);
        assert_eq!(v.get_bits(2 * 13, 13), (2 * varied(2)) % 8_192);
        assert_eq!(v.get_bits(4 * 13, 13), (4 * varied(4)) % 8_192);

        fn varied(i: u64) -> u64 {
            i.wrapping_mul(2_654_435_761).wrapping_add(17)
        }
    }

    #[test]
    fn overwrite_full_word_width() {
        let mut v = BitVec::new();
        v.push(true);
        v.push_bits(0, 64);
        v.overwrite_bits(1, u64::MAX, 64);
        assert_eq!(v.get_bits(1, 64), u64::MAX);
        assert!(v.get(0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overwrite_bits_checks_range() {
        let mut v = BitVec::new();
        v.push_bits(0, 8);
        v.overwrite_bits(4, 0, 8);
    }

    #[test]
    fn append_matches_sequential_pushes() {
        // Build the same logical stream two ways: one vector written
        // straight through, and a left half spliced with a right half.
        let fields: Vec<(u64, u32)> = (0..300)
            .map(|i: u64| {
                let w = 1 + ((i * 7) % 64) as u32;
                let v =
                    (i.wrapping_mul(2_654_435_761)) & if w == 64 { u64::MAX } else { (1 << w) - 1 };
                (v, w)
            })
            .collect();
        for split in [0usize, 1, 17, 150, 299, 300] {
            let mut whole = BitVec::new();
            for &(v, w) in &fields {
                whole.push_bits(v, w);
            }
            let mut left = BitVec::new();
            let mut right = BitVec::new();
            for (i, &(v, w)) in fields.iter().enumerate() {
                if i < split {
                    left.push_bits(v, w);
                } else {
                    right.push_bits(v, w);
                }
            }
            left.append(&right);
            assert_eq!(left, whole, "split at {split}");
        }
    }

    #[test]
    fn append_word_aligned_fast_path() {
        let mut a = BitVec::new();
        a.push_bits(u64::MAX, 64);
        a.push_bits(0x1234_5678_9ABC_DEF0, 64);
        let mut b = BitVec::new();
        b.push_bits(0b101, 3);
        b.push_bits(77, 13);
        let mut joined = a.clone();
        joined.append(&b);
        assert_eq!(joined.len(), 144);
        assert_eq!(joined.get_bits(128, 3), 0b101);
        assert_eq!(joined.get_bits(131, 13), 77);
    }

    #[test]
    fn append_empty_is_a_noop() {
        let mut a = BitVec::new();
        a.push_bits(0b11, 2);
        let before = a.clone();
        a.append(&BitVec::new());
        assert_eq!(a, before);
        let mut empty = BitVec::new();
        empty.append(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn with_capacity_preallocates() {
        let v = BitVec::with_capacity(1_000);
        assert!(v.backing_bytes() >= 1_000 / 8);
        assert!(v.is_empty());
    }
}
