//! # `ac-bitio` — bit-level storage and memory accounting
//!
//! The object of study in Nelson & Yu (PODS 2022) is *the number of bits of
//! program state* a counter needs. This crate makes that number measurable
//! and real rather than purely analytical:
//!
//! * [`bit_len`], [`ceil_log2`] — width helpers with the exact conventions
//!   used throughout the workspace (documented below).
//! * [`StateBits`] — the trait every counter implements to report its exact
//!   current state size; [`MemoryAudit`] gives a per-field breakdown.
//! * [`BitVec`], [`BitWriter`], [`BitReader`] — actual bit-addressed
//!   storage, so "a million 17-bit counters" can be stored in a million × 17
//!   bits and read back.
//! * [`codes`] — self-delimiting integer codes (unary, Elias γ, Elias δ,
//!   Golomb–Rice) used to pack *variable-width* counter states, realizing
//!   the paper's "many counters" motivation end to end.
//! * [`frame`] — slab framing: length-prefixed sections, labels, and
//!   Rice-coded sorted key sets, the grammar of the `ac-engine`
//!   checkpoint format.
//!
//! ## Width conventions
//!
//! For a value `x: u64` stored in a dedicated field, we charge
//! `bit_len(x) = max(1, ⌊log₂x⌋ + 1)` bits — the number of binary digits,
//! with the convention that even the value 0 occupies one bit (a register
//! of width 0 cannot be observed). The paper's `S := ⌈log₂X⌉` differs by at
//! most one bit; all comparisons in `EXPERIMENTS.md` use `bit_len`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
pub mod codes;
pub mod frame;
mod meter;
mod width;

pub use bitvec::{BitReader, BitVec, BitWriter};
pub use meter::{MemoryAudit, StateBits};
pub use width::{bit_len, bit_len_u32, ceil_log2};
