//! Slab framing helpers: length-prefixed sections, labels, and packed
//! sorted-key sets — the on-disk grammar of the `ac-engine` checkpoint.
//!
//! A *frame* is a bit stream assembled from three primitives:
//!
//! * **sections** — a fixed 32-bit payload-length prefix, patched in after
//!   the payload is written ([`begin_section`] / [`end_section`]), so a
//!   reader can bounds-check a slab before parsing it; *indexed* sections
//!   ([`begin_indexed_section`] / [`read_indexed_section`]) additionally
//!   name their destination slot, the primitive delta frames are built
//!   from (a sparse subset of slabs, each section self-addressed);
//! * **labels** — short length-prefixed UTF-8 strings for family names and
//!   the like ([`write_label`] / [`read_label`]);
//! * **sorted key sets** — a strictly increasing `u64` sequence stored as
//!   Golomb–Rice-coded gaps with a per-set parameter
//!   ([`encode_sorted_keys`] / [`decode_sorted_keys`]). Dense key spaces
//!   (the common engine workload) cost a handful of bits per key instead
//!   of 64.
//!
//! Reader-side helpers return `Option` and never panic on *truncated*
//! input; garbage bits inside a section that passes its length check can
//! still abort downstream self-delimiting decoders (they assert on
//! impossible codewords).

use crate::codes::{encode_delta0, rice_len, try_decode_delta0};
use crate::{BitReader, BitVec, BitWriter};

/// Width of a section's payload-length prefix.
const SECTION_LEN_BITS: u32 = 32;

/// Maximum label length accepted by [`read_label`] (defense against
/// corrupt length fields).
const MAX_LABEL_BYTES: u64 = 256;

/// Opens a length-prefixed section: reserves the 32-bit length slot and
/// returns a token that [`end_section`] uses to patch it.
#[must_use]
pub fn begin_section(v: &mut BitVec) -> u64 {
    let at = v.len();
    v.push_bits(0, SECTION_LEN_BITS);
    at
}

/// Closes the section opened at `token`, patching its payload bit length
/// in place.
///
/// # Panics
///
/// Panics if the payload exceeds `2^32 − 1` bits (half a gigabyte — a
/// single slab section is never that large; split it first).
pub fn end_section(v: &mut BitVec, token: u64) {
    let payload = v.len() - token - u64::from(SECTION_LEN_BITS);
    assert!(
        payload < (1u64 << SECTION_LEN_BITS),
        "section payload of {payload} bits overflows the length prefix"
    );
    v.overwrite_bits(token, payload, SECTION_LEN_BITS);
}

/// Reads a section's length prefix and verifies the full payload is
/// present. Returns the payload bit length; the reader is positioned at
/// the payload's first bit. `None` on truncation.
pub fn read_section(r: &mut BitReader<'_>) -> Option<u64> {
    let len = r.try_read_bits(SECTION_LEN_BITS)?;
    (r.remaining() >= len).then_some(len)
}

/// Width of an indexed section's index field.
const SECTION_INDEX_BITS: u32 = 32;

/// Opens an *indexed* section: a fixed 32-bit index (which slab, which
/// shard, which column — the caller's namespace) followed by an ordinary
/// length-prefixed section. Delta frames are built from these: a sparse
/// subset of slabs can be serialized with each section naming its own
/// destination, so the reader needs no out-of-band manifest.
///
/// Close with [`end_section`], exactly as for [`begin_section`].
#[must_use]
pub fn begin_indexed_section(v: &mut BitVec, index: u64) -> u64 {
    assert!(
        index < 1u64 << SECTION_INDEX_BITS,
        "section index {index} overflows the 32-bit index field"
    );
    v.push_bits(index, SECTION_INDEX_BITS);
    begin_section(v)
}

/// Reads the index and length prefix written by [`begin_indexed_section`],
/// verifying the full payload is present. Returns `(index, payload bit
/// length)`; the reader is positioned at the payload's first bit. `None`
/// on truncation.
pub fn read_indexed_section(r: &mut BitReader<'_>) -> Option<(u64, u64)> {
    let index = r.try_read_bits(SECTION_INDEX_BITS)?;
    let len = read_section(r)?;
    Some((index, len))
}

/// Appends a length-prefixed UTF-8 label (Elias-δ byte count, then raw
/// bytes).
///
/// # Panics
///
/// Panics if the label exceeds `MAX_LABEL_BYTES` (256) bytes.
pub fn write_label(v: &mut BitVec, label: &str) {
    assert!(
        label.len() as u64 <= MAX_LABEL_BYTES,
        "label too long: {} bytes",
        label.len()
    );
    let mut w = BitWriter::new(v);
    encode_delta0(&mut w, label.len() as u64);
    for b in label.bytes() {
        w.write_bits(u64::from(b), 8);
    }
}

/// Reads a label written by [`write_label`]. `None` on truncation, an
/// over-long length field, or invalid UTF-8.
pub fn read_label(r: &mut BitReader<'_>) -> Option<String> {
    let len = try_decode_delta0(r)?;
    if len > MAX_LABEL_BYTES || r.remaining() < len * 8 {
        return None;
    }
    let bytes: Vec<u8> = (0..len).map(|_| r.read_bits(8) as u8).collect();
    String::from_utf8(bytes).ok()
}

/// The Golomb–Rice parameter used for a strictly increasing key set:
/// `⌊log₂(mean gap)⌋`, the standard near-optimal choice for
/// geometric-looking gap distributions.
#[must_use]
pub fn rice_parameter_for_keys(keys: &[u64]) -> u32 {
    if keys.len() < 2 {
        return 0;
    }
    let span = keys[keys.len() - 1] - keys[0];
    let mean_gap = (span / (keys.len() as u64 - 1)).max(1);
    mean_gap.ilog2().min(63)
}

/// Appends a strictly increasing key set: a 6-bit Rice parameter, the
/// first key as a fixed 64-bit field, then `gap − 1` Rice-coded per
/// subsequent key. Writes nothing for an empty set (the count travels out
/// of band).
///
/// Returns the number of bits written.
///
/// # Panics
///
/// Panics if `keys` is not strictly increasing.
pub fn encode_sorted_keys(v: &mut BitVec, keys: &[u64]) -> u64 {
    let start = v.len();
    if keys.is_empty() {
        return 0;
    }
    for pair in keys.windows(2) {
        assert!(pair[1] > pair[0], "keys must be strictly increasing");
    }
    let k = rice_parameter_for_keys(keys);
    v.push_bits(u64::from(k), 6);
    let mut w = BitWriter::new(v);
    w.write_bits(keys[0], 64);
    for pair in keys.windows(2) {
        crate::codes::encode_rice(&mut w, pair[1] - pair[0] - 1, k);
    }
    v.len() - start
}

/// Reads `count` keys written by [`encode_sorted_keys`]. `None` on
/// truncation or if reconstruction overflows `u64` (corrupt gaps).
pub fn decode_sorted_keys(r: &mut BitReader<'_>, count: usize) -> Option<Vec<u64>> {
    if count == 0 {
        return Some(Vec::new());
    }
    // Every encoded key past the first costs at least one bit (and the
    // preamble 70), so a count exceeding the remaining bits is
    // structurally impossible — reject before allocating for it.
    if count as u64 > r.remaining() {
        return None;
    }
    let k = r.try_read_bits(6)? as u32;
    let mut keys = Vec::with_capacity(count);
    keys.push(r.try_read_bits(64)?);
    for _ in 1..count {
        let gap = try_decode_rice(r, k)?;
        let prev = *keys.last().expect("non-empty");
        keys.push(prev.checked_add(gap)?.checked_add(1)?);
    }
    Some(keys)
}

/// [`crate::codes::decode_rice`] with truncation reported as `None`
/// instead of a panic.
fn try_decode_rice(r: &mut BitReader<'_>, k: u32) -> Option<u64> {
    let mut q = 0u64;
    loop {
        if r.remaining() == 0 {
            return None;
        }
        if r.read_bit() {
            break;
        }
        q += 1;
    }
    let rem = if k > 0 { r.try_read_bits(k)? } else { 0 };
    Some((q << k) | rem)
}

/// Exact bit cost of [`encode_sorted_keys`] for `keys`, without encoding.
#[must_use]
pub fn sorted_keys_bits(keys: &[u64]) -> u64 {
    if keys.is_empty() {
        return 0;
    }
    let k = rice_parameter_for_keys(keys);
    let mut bits = 6 + 64;
    for pair in keys.windows(2) {
        bits += rice_len(pair[1] - pair[0] - 1, k);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_round_trip() {
        let mut v = BitVec::new();
        let tok = begin_section(&mut v);
        v.push_bits(0xABCD, 16);
        v.push_bits(0b101, 3);
        end_section(&mut v, tok);
        let mut r = BitReader::new(&v);
        let len = read_section(&mut r).unwrap();
        assert_eq!(len, 19);
        assert_eq!(r.read_bits(16), 0xABCD);
        assert_eq!(r.read_bits(3), 0b101);
    }

    #[test]
    fn indexed_section_round_trip() {
        let mut v = BitVec::new();
        for idx in [0u64, 7, u32::MAX as u64] {
            let tok = begin_indexed_section(&mut v, idx);
            v.push_bits((idx ^ 0x5555) & 0xFFFF, 16);
            end_section(&mut v, tok);
        }
        let mut r = BitReader::new(&v);
        for idx in [0u64, 7, u32::MAX as u64] {
            let (got, len) = read_indexed_section(&mut r).unwrap();
            assert_eq!(got, idx);
            assert_eq!(len, 16);
            assert_eq!(r.read_bits(16), (idx ^ 0x5555) & 0xFFFF);
        }
        assert_eq!(r.remaining(), 0);
        assert_eq!(
            read_indexed_section(&mut r),
            None,
            "exhausted reader reports truncation"
        );
    }

    #[test]
    #[should_panic(expected = "overflows the 32-bit index field")]
    fn oversized_section_index_panics() {
        let mut v = BitVec::new();
        let _ = begin_indexed_section(&mut v, 1 << 32);
    }

    #[test]
    fn truncated_section_is_rejected() {
        let mut v = BitVec::new();
        let tok = begin_section(&mut v);
        v.push_bits(0xFFFF, 16);
        end_section(&mut v, tok);
        // Claim more bits than exist by corrupting the length field.
        v.overwrite_bits(tok, 1_000, 32);
        let mut r = BitReader::new(&v);
        assert_eq!(read_section(&mut r), None);
        // An empty reader cannot even produce the prefix.
        let empty = BitVec::new();
        assert_eq!(read_section(&mut BitReader::new(&empty)), None);
    }

    #[test]
    fn label_round_trip() {
        let mut v = BitVec::new();
        write_label(&mut v, "nelson-yu");
        write_label(&mut v, "");
        let mut r = BitReader::new(&v);
        assert_eq!(read_label(&mut r).as_deref(), Some("nelson-yu"));
        assert_eq!(read_label(&mut r).as_deref(), Some(""));
    }

    #[test]
    fn oversized_label_length_is_rejected() {
        let mut v = BitVec::new();
        {
            let mut w = BitWriter::new(&mut v);
            encode_delta0(&mut w, 100_000); // absurd byte count
        }
        let mut r = BitReader::new(&v);
        assert_eq!(read_label(&mut r), None);
    }

    #[test]
    fn sorted_keys_round_trip_dense_and_sparse() {
        for keys in [
            (0u64..1_000).collect::<Vec<_>>(),
            (0u64..1_000).map(|i| i * 37 + 5).collect(),
            vec![3, 9, 10, 11, 12_345, u64::MAX - 2, u64::MAX],
            vec![0],
            vec![u64::MAX],
            vec![],
        ] {
            let mut v = BitVec::new();
            let bits = encode_sorted_keys(&mut v, &keys);
            assert_eq!(bits, v.len());
            assert_eq!(bits, sorted_keys_bits(&keys), "length accounting");
            let mut r = BitReader::new(&v);
            let back = decode_sorted_keys(&mut r, keys.len()).unwrap();
            assert_eq!(back, keys);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn dense_keys_pack_far_below_64_bits_each() {
        // 10k keys dense over a 320k span: the whole point of gap coding.
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 32).collect();
        let mut v = BitVec::new();
        encode_sorted_keys(&mut v, &keys);
        let per_key = v.len() as f64 / keys.len() as f64;
        assert!(per_key < 10.0, "bits/key = {per_key}");
    }

    #[test]
    fn truncated_keys_are_rejected_gracefully() {
        let keys: Vec<u64> = (0..100u64).collect();
        let mut v = BitVec::new();
        encode_sorted_keys(&mut v, &keys);
        // Chop the tail off: decode must return None, not panic.
        let mut short = BitVec::new();
        for i in 0..(v.len() / 2) {
            short.push(v.get(i));
        }
        let mut r = BitReader::new(&short);
        assert_eq!(decode_sorted_keys(&mut r, keys.len()), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_keys_panic() {
        let mut v = BitVec::new();
        encode_sorted_keys(&mut v, &[5, 3]);
    }

    #[test]
    fn bytes_round_trip() {
        let mut v = BitVec::new();
        v.push_bits(0xDEAD_BEEF_CAFE, 48);
        v.push_bits(0b10110, 5);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 7); // ceil(53/8)
        let back = BitVec::from_bytes(&bytes);
        assert!(back.len() >= v.len());
        assert_eq!(back.get_bits(0, 48), 0xDEAD_BEEF_CAFE);
        assert_eq!(back.get_bits(48, 5), 0b10110);
    }
}
