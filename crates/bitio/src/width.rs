//! Bit-width helpers.

/// Number of binary digits needed to write `x`, charging one bit for zero:
/// `bit_len(0) = 1`, `bit_len(1) = 1`, `bit_len(2) = 2`, `bit_len(255) = 8`.
///
/// This is the memory charge for a register currently holding `x`; see the
/// crate docs for the convention discussion.
#[inline]
#[must_use]
pub fn bit_len(x: u64) -> u32 {
    (64 - x.leading_zeros()).max(1)
}

/// [`bit_len`] for `u32` operands.
#[inline]
#[must_use]
pub fn bit_len_u32(x: u32) -> u32 {
    (32 - x.leading_zeros()).max(1)
}

/// `⌈log₂(x)⌉` for `x ≥ 1`: the number of bits needed to *address* one of
/// `x` distinct states. `ceil_log2(1) = 0`.
///
/// # Panics
///
/// Panics if `x == 0` (an empty state space cannot be addressed).
#[inline]
#[must_use]
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x > 0, "ceil_log2 of zero");
    64 - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_len_small_values() {
        assert_eq!(bit_len(0), 1);
        assert_eq!(bit_len(1), 1);
        assert_eq!(bit_len(2), 2);
        assert_eq!(bit_len(3), 2);
        assert_eq!(bit_len(4), 3);
        assert_eq!(bit_len(255), 8);
        assert_eq!(bit_len(256), 9);
        assert_eq!(bit_len(u64::MAX), 64);
    }

    #[test]
    fn bit_len_u32_matches_u64_version() {
        for x in [0u32, 1, 2, 3, 100, 65_535, u32::MAX] {
            assert_eq!(bit_len_u32(x), bit_len(u64::from(x)));
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    #[should_panic(expected = "ceil_log2 of zero")]
    fn ceil_log2_zero_panics() {
        let _ = ceil_log2(0);
    }

    #[test]
    fn bit_len_is_monotone() {
        let mut prev = 0;
        for x in 0..10_000u64 {
            let b = bit_len(x);
            assert!(b >= prev);
            prev = b;
        }
    }
}
