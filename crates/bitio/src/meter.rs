//! The [`StateBits`] trait and per-field memory audits.

/// Exact accounting of the bits of *program state* a data structure
/// currently occupies.
///
/// This is the quantity Theorems 1.1, 1.2 and 2.3 of the paper bound: the
/// memory needed to persist the structure between operations, **not** the
/// transient working memory of an update (Remark 2.2 explicitly allows
/// `O(log N)`-bit scratch registers during updates and queries).
pub trait StateBits {
    /// Number of bits of persistent state right now.
    fn state_bits(&self) -> u64;

    /// Per-field breakdown of [`StateBits::state_bits`].
    ///
    /// The default implementation reports a single unnamed field; types
    /// with several registers should override it so that experiment
    /// reports can show where the bits go.
    fn memory_audit(&self) -> MemoryAudit {
        let mut audit = MemoryAudit::new();
        audit.field("state", self.state_bits());
        audit
    }
}

/// A per-field breakdown of a structure's persistent state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryAudit {
    fields: Vec<(String, u64)>,
}

impl MemoryAudit {
    /// Creates an empty audit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bits` for a field named `name`; returns `self` for
    /// chaining-style use in `memory_audit` implementations.
    pub fn field(&mut self, name: impl Into<String>, bits: u64) -> &mut Self {
        self.fields.push((name.into(), bits));
        self
    }

    /// The recorded fields in insertion order.
    #[must_use]
    pub fn fields(&self) -> &[(String, u64)] {
        &self.fields
    }

    /// Sum of all field sizes.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.fields.iter().map(|(_, b)| b).sum()
    }

    /// Renders the audit as a compact single-line string, e.g.
    /// `"X:5 + Y:11 + t:3 = 19 bits"`.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, (name, bits)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(" + ");
            }
            let _ = write!(out, "{name}:{bits}");
        }
        let _ = write!(out, " = {} bits", self.total_bits());
        out
    }
}

impl<T: StateBits + ?Sized> StateBits for &T {
    fn state_bits(&self) -> u64 {
        (**self).state_bits()
    }

    fn memory_audit(&self) -> MemoryAudit {
        (**self).memory_audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl StateBits for Fake {
        fn state_bits(&self) -> u64 {
            17
        }
    }

    #[test]
    fn default_audit_totals_state_bits() {
        let f = Fake;
        let a = f.memory_audit();
        assert_eq!(a.total_bits(), 17);
        assert_eq!(a.fields().len(), 1);
    }

    #[test]
    fn audit_accumulates_and_renders() {
        let mut a = MemoryAudit::new();
        a.field("X", 5);
        a.field("Y", 11);
        a.field("t", 3);
        assert_eq!(a.total_bits(), 19);
        assert_eq!(a.render(), "X:5 + Y:11 + t:3 = 19 bits");
    }

    #[test]
    fn blanket_ref_impl_works() {
        fn total(x: &dyn StateBits) -> u64 {
            x.state_bits()
        }
        assert_eq!(total(&Fake), 17);
    }
}
