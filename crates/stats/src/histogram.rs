//! Fixed-width histograms.

/// A histogram over `[lo, hi)` with equal-width bins plus explicit
/// underflow/overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`, both finite, and `bins ≥ 1`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        assert!(bins >= 1, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(low, high)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Index of the fullest bin (first one on ties); `None` if all in-range
    /// bins are empty.
    #[must_use]
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &max) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
        (max > 0).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert_eq!(h.bins(), &[1; 10]);
        assert_eq!(h.count(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn edges_and_boundaries() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.0); // bin 0 (left edge inclusive)
        h.push(0.25); // bin 1
        h.push(0.999); // bin 3
        h.push(1.0); // overflow (right edge exclusive)
        h.push(-0.001); // underflow
        assert_eq!(h.bins(), &[1, 1, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.bin_edges(1), (0.25, 0.5));
    }

    #[test]
    fn mode_bin_reports_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..5 {
            h.push(1.5);
        }
        h.push(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn mode_bin_none_when_empty_in_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(5.0);
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn rejects_inverted_range() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }
}
