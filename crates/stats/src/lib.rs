//! # `ac-stats` — statistics toolkit for the Nelson–Yu reproduction
//!
//! Every experiment in this workspace turns a pile of trial outcomes into
//! a claim: "the empirical CDFs are nearly identical" (Figure 1), "the
//! failure probability is below δ" (Theorems 1.2, 2.1), "the merged
//! counter has the same distribution as the sequential one" (Remark 2.4).
//! This crate supplies the machinery for those claims:
//!
//! * [`Summary`] — streaming (Welford) mean/variance/min/max.
//! * [`Ecdf`] — empirical CDFs and quantiles (the object plotted in
//!   Figure 1).
//! * [`Histogram`] — fixed-width binning for distribution sketches.
//! * [`wilson_interval`] — confidence intervals on failure probabilities.
//! * [`ks`] — two-sample Kolmogorov–Smirnov test (merge-law validation).
//! * [`chi2`] — chi-square goodness of fit.
//! * [`dist`] — normal CDF/quantile and the Kolmogorov distribution.
//! * [`theory`] — generic tail-bound calculators (Chebyshev, multiplicative
//!   Chernoff) quoted by the paper's proofs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2;
pub mod dist;
mod ecdf;
mod histogram;
mod intervals;
pub mod ks;
mod summary;
pub mod theory;

pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use intervals::wilson_interval;
pub use summary::Summary;
