//! Streaming summary statistics (Welford's algorithm).

/// Streaming mean/variance/min/max accumulator.
///
/// Uses Welford's numerically stable update; O(1) memory regardless of the
/// number of observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean.
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford / Chan's
    /// formula), as used when trial shards run on different threads.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n-1` denominator); 0 with fewer than two
    /// observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1_000).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut left = Summary::from_slice(&xs[..337]);
        let right = Summary::from_slice(&xs[337..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-8);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut b = Summary::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let offset = 1e9;
        let s = Summary::from_slice(&[offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]);
        assert!((s.mean() - (offset + 10.0)).abs() < 1e-6);
        assert!((s.variance() - 30.0).abs() < 1e-6, "var={}", s.variance());
    }
}
