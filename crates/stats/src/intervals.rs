//! Confidence intervals for proportions.

use crate::dist::normal_quantile;

/// Wilson score interval for a binomial proportion.
///
/// Given `successes` out of `trials` and a confidence level (e.g. `0.95`),
/// returns `(lo, hi)` bounds on the true success probability. Unlike the
/// normal ("Wald") interval it behaves sensibly when the observed count is
/// 0 or `trials` — exactly the regime of failure-probability estimation
/// where observed failures are rare or absent.
///
/// # Panics
///
/// Panics if `trials == 0`, `successes > trials`, or `confidence` is not
/// in `(0, 1)`.
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, confidence: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson interval needs at least one trial");
    assert!(successes <= trials, "more successes than trials");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (phat + z2 / (2.0 * n)) / denom;
    let half = z * (phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(30, 100, 0.95);
        assert!(lo < 0.3 && 0.3 < hi);
    }

    #[test]
    fn zero_successes_has_zero_lower_bound() {
        let (lo, hi) = wilson_interval(0, 1_000, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01, "hi={hi}");
    }

    #[test]
    fn all_successes_has_one_upper_bound() {
        let (lo, hi) = wilson_interval(1_000, 1_000, 0.95);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.99);
    }

    #[test]
    fn known_value_against_r() {
        // R: binom.confint(5, 50, method="wilson") -> [0.0432, 0.2147]
        let (lo, hi) = wilson_interval(5, 50, 0.95);
        assert!((lo - 0.0432).abs() < 0.002, "lo={lo}");
        assert!((hi - 0.2147).abs() < 0.002, "hi={hi}");
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let (lo95, hi95) = wilson_interval(10, 100, 0.95);
        let (lo99, hi99) = wilson_interval(10, 100, 0.99);
        assert!(lo99 < lo95 && hi99 > hi95);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn rejects_zero_trials() {
        let _ = wilson_interval(0, 0, 0.95);
    }
}
