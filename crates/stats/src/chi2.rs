//! Chi-square goodness-of-fit testing.

use crate::dist::normal_cdf;

/// Result of a chi-square goodness-of-fit computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom actually used (after bin pooling).
    pub dof: usize,
    /// Approximate p-value (Wilson–Hilferty cube-root normal
    /// approximation; accurate to a few per mille for `dof ≥ 3`).
    pub p_value: f64,
}

/// Chi-square goodness of fit of observed counts against expected counts.
///
/// Bins are pooled greedily (left to right) until each pooled bin has
/// expected mass at least `min_expected` (a common choice is 5–10), which
/// keeps the chi-square approximation valid in the tails.
///
/// # Panics
///
/// Panics if lengths differ, if the inputs are empty, or if every pooled
/// bin fails to reach `min_expected`.
#[must_use]
pub fn chi2_gof(observed: &[f64], expected: &[f64], min_expected: f64) -> Chi2Result {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(!observed.is_empty(), "empty chi-square input");

    let mut statistic = 0.0;
    let mut bins_used = 0usize;
    let mut pooled_obs = 0.0;
    let mut pooled_exp = 0.0;
    for (&o, &e) in observed.iter().zip(expected.iter()) {
        pooled_obs += o;
        pooled_exp += e;
        if pooled_exp >= min_expected {
            statistic += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
            bins_used += 1;
            pooled_obs = 0.0;
            pooled_exp = 0.0;
        }
    }
    if pooled_exp > 0.0 && bins_used > 0 {
        // Fold the remainder into the last pooled bin's contribution by
        // treating it as one more (possibly small) bin.
        statistic += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
        bins_used += 1;
    }
    assert!(bins_used >= 2, "all mass pooled into a single bin");
    let dof = bins_used - 1;
    Chi2Result {
        statistic,
        dof,
        p_value: chi2_sf(statistic, dof),
    }
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom, via the Wilson–Hilferty transformation.
#[must_use]
pub fn chi2_sf(x: f64, dof: usize) -> f64 {
    assert!(dof > 0, "dof must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    let k = dof as f64;
    // (X/k)^(1/3) is approximately normal with mean 1 - 2/(9k) and
    // variance 2/(9k).
    let z = ((x / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    1.0 - normal_cdf(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi2_sf_known_values() {
        // Chi-square critical values: P(X_5 > 11.07) = 0.05,
        // P(X_10 > 18.31) = 0.05.
        assert!((chi2_sf(11.07, 5) - 0.05).abs() < 0.005);
        assert!((chi2_sf(18.31, 10) - 0.05).abs() < 0.004);
        assert!(chi2_sf(0.0, 3) == 1.0);
    }

    #[test]
    fn perfect_fit_has_zero_statistic() {
        let obs = [10.0, 20.0, 30.0, 40.0];
        let r = chi2_gof(&obs, &obs, 5.0);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn gross_misfit_is_detected() {
        let obs = [100.0, 0.0, 0.0, 0.0];
        let exp = [25.0, 25.0, 25.0, 25.0];
        let r = chi2_gof(&obs, &exp, 5.0);
        assert!(r.statistic > 100.0);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn pooling_respects_min_expected() {
        // Ten bins of expected 1.0 pool into (at least) pairs of >= 2.
        let obs = vec![1.0; 10];
        let exp = vec![1.0; 10];
        let r = chi2_gof(&obs, &exp, 2.0);
        assert!(r.dof <= 5);
        assert_eq!(r.statistic, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = chi2_gof(&[1.0], &[1.0, 2.0], 5.0);
    }
}
