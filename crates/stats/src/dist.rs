//! Reference distributions: standard normal and Kolmogorov.

/// Standard normal CDF `Φ(x)`.
///
/// Uses the complementary error function below; absolute error is under
/// `1.2e-7` across the real line, ample for every test in this workspace.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function `erfc(x)`, via the rational Chebyshev
/// approximation of Numerical Recipes §6.2 (absolute error `< 1.2e-7`).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal quantile `Φ⁻¹(p)` via the Acklam/Beasley-Springer-Moro
/// style rational approximation refined with one Halley step.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal quantile needs p in (0,1)");
    // Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement against the high-accuracy CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2k²λ²}` — the asymptotic p-value of a
/// scaled KS statistic.
#[must_use]
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        // The erfc approximation carries ~1.2e-7 absolute error.
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158_655_254).abs() < 1e-6);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        // Exact by construction for x != 0; at x = 0 both branches return
        // the same approximate value, so allow the approximation error.
        for &x in &[0.0, 0.3, 1.0, 2.5] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 3e-7, "x={x}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-7, "p={p}, x={x}");
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_endpoints() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn kolmogorov_sf_known_values() {
        // Classical table values: Q(1.36) ≈ 0.049, Q(1.63) ≈ 0.010.
        assert!((kolmogorov_sf(1.36) - 0.049).abs() < 0.002);
        assert!((kolmogorov_sf(1.63) - 0.010).abs() < 0.001);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn kolmogorov_sf_is_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 1..50 {
            let q = kolmogorov_sf(i as f64 * 0.1);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
    }
}
