//! Two-sample Kolmogorov–Smirnov test.
//!
//! Remark 2.4 claims the merged counter "follows the same distribution as
//! if it was incremented exactly `N₁ + N₂` times". Experiment E5 validates
//! that claim by running many merge trials and many sequential trials and
//! comparing the two samples with this test.

use crate::dist::kolmogorov_sf;

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup_x |F₁(x) − F₂(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution with the effective
    /// sample size `n₁n₂/(n₁+n₂)`).
    pub p_value: f64,
}

/// Runs the two-sample KS test.
///
/// Ties are handled correctly (the statistic is evaluated after advancing
/// through all equal values). The p-value uses the asymptotic Kolmogorov
/// distribution, accurate for sample sizes in the hundreds or more — our
/// experiments use thousands.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
#[must_use]
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs data");
    assert!(
        a.iter().chain(b.iter()).all(|x| !x.is_nan()),
        "KS sample contains NaN"
    );
    let mut xs: Vec<f64> = a.to_vec();
    let mut ys: Vec<f64> = b.to_vec();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));

    let n1 = xs.len();
    let n2 = ys.len();
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let t = xs[i].min(ys[j]);
        while i < n1 && xs[i] <= t {
            i += 1;
        }
        while j < n2 && ys[j] <= t {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    // Stephens' small-sample correction improves the asymptotic
    // approximation noticeably for n in the hundreds.
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let r = ks_two_sample(&xs, &xs);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 1_000.0 + i as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert_eq!(r.statistic, 1.0);
        assert!(r.p_value < 1e-9);
    }

    #[test]
    fn same_distribution_yields_high_p_value() {
        // Two halves of a deterministic low-discrepancy sequence.
        let a: Vec<f64> = (0..2_000).map(|i| ((i * 997) % 2_000) as f64).collect();
        let b: Vec<f64> = (0..2_000).map(|i| ((i * 1_499) % 2_000) as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value > 0.05, "p={}", r.p_value);
    }

    #[test]
    fn shifted_distribution_is_detected() {
        let a: Vec<f64> = (0..1_000).map(|i| (i % 100) as f64).collect();
        let b: Vec<f64> = (0..1_000).map(|i| (i % 100) as f64 + 15.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic >= 0.14, "D={}", r.statistic);
        assert!(r.p_value < 0.001, "p={}", r.p_value);
    }

    #[test]
    fn handles_ties_between_samples() {
        let a = vec![1.0, 2.0, 2.0, 3.0];
        let b = vec![2.0, 2.0, 2.0, 2.0];
        let r = ks_two_sample(&a, &b);
        // F_a(2) = 0.75, F_b(2) = 1.0; F_a(1) = 0.25, F_b(1) = 0.
        assert!((r.statistic - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unequal_sizes_are_supported() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = (0..1_000).map(|i| i as f64 / 1_000.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic < 0.05);
        assert!(r.p_value > 0.5);
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn rejects_empty() {
        let _ = ks_two_sample(&[], &[1.0]);
    }
}
