//! Closed-form tail bounds and estimator moments quoted by the paper.
//!
//! These calculators appear in experiment headers ("theory says ≤ δ") and
//! in tests that compare measured moments with the paper's formulas.

/// Mean of the `Morris(a)` estimator after `n` increments: exactly `n`
/// (the estimator `a⁻¹((1+a)^X − 1)` is unbiased; §1.2 of the paper).
#[must_use]
pub fn morris_estimator_mean(n: u64) -> f64 {
    n as f64
}

/// Variance of the `Morris(a)` estimator after `n` increments:
/// `a·n·(n−1)/2` (§1.2 of the paper).
#[must_use]
pub fn morris_estimator_variance(a: f64, n: u64) -> f64 {
    let nf = n as f64;
    a * nf * (nf - 1.0) / 2.0
}

/// Chebyshev bound on the failure probability
/// `P(|N̂ − N| > εN) ≤ Var/(εN)²` for the `Morris(a)` estimator.
///
/// With `a = 2ε²δ` this is exactly the paper's "setting `a = 2ε²δ`, one
/// obtains the guarantee Eq. (1)" step.
#[must_use]
pub fn morris_chebyshev_failure(a: f64, eps: f64, n: u64) -> f64 {
    if n < 2 {
        return 0.0; // estimator is exact for N ∈ {0, 1}
    }
    let nf = n as f64;
    (morris_estimator_variance(a, n) / (eps * nf).powi(2)).min(1.0)
}

/// Multiplicative Chernoff bound:
/// `P(X ≥ (1+d)μ) ≤ exp(−d²μ/(2+d))` for a sum of independent 0/1
/// variables with mean `μ` and `d > 0`.
#[must_use]
pub fn chernoff_upper(mu: f64, d: f64) -> f64 {
    assert!(d > 0.0 && mu >= 0.0);
    (-d * d * mu / (2.0 + d)).exp().min(1.0)
}

/// Multiplicative Chernoff bound for the lower tail:
/// `P(X ≤ (1−d)μ) ≤ exp(−d²μ/2)` for `0 < d < 1`.
#[must_use]
pub fn chernoff_lower(mu: f64, d: f64) -> f64 {
    assert!(d > 0.0 && d < 1.0 && mu >= 0.0);
    (-d * d * mu / 2.0).exp().min(1.0)
}

/// The Morris(a) tail bound proven in §2.2 of the paper: for any
/// `k > 1/a`, prefix sums of the geometric `Z_i` deviate by a relative
/// `ε` with probability at most `2·exp(−ε²/(8a))`; consequently the
/// estimator is a `(1 ± 2ε)` approximation with probability at least
/// `1 − 2·exp(−ε²/(8a))`.
#[must_use]
pub fn morris_section22_failure(a: f64, eps: f64) -> f64 {
    (2.0 * (-eps * eps / (8.0 * a)).exp()).min(1.0)
}

/// The paper's prescription `a = ε²/(8 ln(1/δ))` (§2.2) to make
/// [`morris_section22_failure`] equal `2δ`.
#[must_use]
pub fn morris_a_for(eps: f64, delta: f64) -> f64 {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    eps * eps / (8.0 * (1.0 / delta).ln())
}

/// Theorem 1.2's space form for Morris+: `log log N + log 1/ε +
/// log log 1/δ` (base-2 logs, no constant factor). Used as the x-axis
/// scale in the space-scaling experiments.
#[must_use]
pub fn optimal_space_form(n: u64, eps: f64, delta: f64) -> f64 {
    assert!(n >= 2);
    let loglog_n = ((n as f64).log2()).log2().max(0.0);
    loglog_n + (1.0 / eps).log2().max(0.0) + ((1.0 / delta).log2()).log2().max(0.0)
}

/// The classical (pre-Nelson–Yu) space form `log log N + log 1/ε +
/// log 1/δ`, for comparison curves.
#[must_use]
pub fn classical_space_form(n: u64, eps: f64, delta: f64) -> f64 {
    assert!(n >= 2);
    let loglog_n = ((n as f64).log2()).log2().max(0.0);
    loglog_n + (1.0 / eps).log2().max(0.0) + (1.0 / delta).log2().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morris_variance_special_cases() {
        // a -> deterministic counter (a=0) has zero variance.
        assert_eq!(morris_estimator_variance(0.0, 100), 0.0);
        // Base-2 Morris (a=1): Var = N(N-1)/2.
        assert_eq!(morris_estimator_variance(1.0, 10), 45.0);
        // n = 1 has zero variance (first increment is deterministic).
        assert_eq!(morris_estimator_variance(1.0, 1), 0.0);
    }

    #[test]
    fn chebyshev_matches_paper_parameterization() {
        // a = 2ε²δ gives failure ≤ δ·(1 - 1/N) ≤ δ.
        let (eps, delta) = (0.1, 0.05);
        let a = 2.0 * eps * eps * delta;
        let bound = morris_chebyshev_failure(a, eps, 1_000_000);
        assert!(bound <= delta);
        assert!(bound > 0.9 * delta);
    }

    #[test]
    fn chernoff_bounds_shrink_with_mu() {
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(10.0, 0.5));
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(10.0, 0.5));
        assert!(chernoff_upper(50.0, 0.5) < 1.0);
    }

    #[test]
    fn section22_failure_matches_a_for() {
        let (eps, delta) = (0.05, 1e-4);
        let a = morris_a_for(eps, delta);
        let fail = morris_section22_failure(a, eps);
        assert!((fail - 2.0 * delta).abs() < 1e-12, "fail={fail}");
    }

    #[test]
    fn space_forms_ordering() {
        // The optimal form is never larger than the classical form.
        for &(n, eps, delta) in &[
            (1u64 << 20, 0.1, 1e-3),
            (1 << 30, 0.01, 1e-9),
            (1 << 10, 0.5, 0.4),
        ] {
            assert!(optimal_space_form(n, eps, delta) <= classical_space_form(n, eps, delta));
        }
    }

    #[test]
    fn space_form_growth_in_delta_is_doubly_log() {
        // Halving δ twice should move the optimal form by ~log2(2)=1 in
        // the loglog term only when crossing powers of two of log(1/δ).
        let base = optimal_space_form(1 << 20, 0.1, 1e-3);
        let deeper = optimal_space_form(1 << 20, 0.1, 1e-6);
        // log2 log2 10^3 ≈ 3.32 -> log2 log2 10^6 ≈ 4.32: one bit.
        assert!((deeper - base - 1.0).abs() < 0.05, "Δ={}", deeper - base);
    }
}
