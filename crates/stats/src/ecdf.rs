//! Empirical cumulative distribution functions.
//!
//! Figure 1 of the paper plots, for each algorithm, "a dot at `(x, y)`
//! meaning that in `x%` of the trial runs the relative error was `y%` or
//! less" — i.e. the inverse of the empirical CDF of relative errors.
//! [`Ecdf`] provides both directions.

/// An empirical CDF over a fixed sample.
///
/// Construction sorts the sample once; evaluation and quantiles are then
/// O(log n).
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF of an empty sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF sample contains NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN checked above"));
        Self { sorted: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — fraction of samples `≤ x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.rank(x) as f64 / self.sorted.len() as f64
    }

    /// Number of samples `≤ x`.
    #[must_use]
    pub fn rank(&self, x: f64) -> usize {
        self.sorted.partition_point(|&s| s <= x)
    }

    /// The `q`-quantile for `q ∈ [0, 1]`, using the inverse-CDF
    /// (type-1) definition: the smallest sample value `v` with
    /// `F(v) ≥ q`. `quantile(0)` is the minimum, `quantile(1)` the
    /// maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level out of range");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The sorted sample (ascending).
    #[must_use]
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Minimum of the sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum of the sample — e.g. "the worst relative error seen in
    /// 5,000 runs", the number the paper quotes as 2.37 %.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Samples the curve `(x%, quantile(x%))` at `points` evenly spaced
    /// percentiles — exactly the series plotted in Figure 1.
    #[must_use]
    pub fn percentile_curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                (100.0 * q, self.quantile(q))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn eval_step_function() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn eval_with_ties() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(1.9), 0.0);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(5.0), 1.0);
    }

    #[test]
    fn quantiles_hit_order_statistics() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.21), 20.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.min(), 10.0);
        assert_eq!(e.max(), 50.0);
    }

    #[test]
    fn quantile_and_eval_are_pseudo_inverses() {
        let xs: Vec<f64> = (0..997).map(|i| ((i * 7919) % 1000) as f64).collect();
        let e = Ecdf::new(xs);
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let v = e.quantile(q);
            assert!(e.eval(v) >= q, "q={q}");
        }
    }

    #[test]
    fn percentile_curve_is_monotone_and_spans_range() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 1.37).sin().abs()).collect();
        let e = Ecdf::new(xs);
        let curve = e.percentile_curve(101);
        assert_eq!(curve.len(), 101);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[100].0, 100.0);
        assert_eq!(curve[100].1, e.max());
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve must be nondecreasing");
        }
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.sorted_samples(), &[1.0, 2.0, 3.0]);
    }
}
