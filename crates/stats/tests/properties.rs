//! Property-based tests for the statistics toolkit.

use ac_stats::chi2::chi2_sf;
use ac_stats::dist::{kolmogorov_sf, normal_cdf, normal_quantile};
use ac_stats::ks::ks_two_sample;
use ac_stats::{wilson_interval, Ecdf, Summary};
use proptest::prelude::*;

proptest! {
    /// Welford merging equals one-pass accumulation for arbitrary splits.
    #[test]
    fn summary_merge_associative(xs in prop::collection::vec(-1e6f64..1e6, 2..200), split in 0usize..200) {
        let split = split % xs.len();
        let whole = Summary::from_slice(&xs);
        let mut left = Summary::from_slice(&xs[..split]);
        left.merge(&Summary::from_slice(&xs[split..]));
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-5 * whole.variance().max(1.0));
    }

    /// ECDF evaluation is a nondecreasing step function from 0 to 1, and
    /// quantile is its pseudo-inverse.
    #[test]
    fn ecdf_is_a_cdf(xs in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let e = Ecdf::new(xs.clone());
        prop_assert_eq!(e.eval(f64::NEG_INFINITY.max(e.min() - 1.0)), 0.0);
        prop_assert_eq!(e.eval(e.max()), 1.0);
        let probes = [0.1, 0.25, 0.5, 0.9, 1.0];
        let mut prev = 0.0;
        for &q in &probes {
            let v = e.quantile(q);
            prop_assert!(e.eval(v) >= q - 1e-12);
            prop_assert!(v >= prev || q == probes[0]);
            prev = v;
        }
    }

    /// The KS statistic is symmetric, in [0, 1], and zero for identical
    /// samples.
    #[test]
    fn ks_basic_properties(a in prop::collection::vec(-1e3f64..1e3, 2..100),
                           b in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let ab = ks_two_sample(&a, &b);
        let ba = ks_two_sample(&b, &a);
        prop_assert!((ab.statistic - ba.statistic).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab.statistic));
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        let aa = ks_two_sample(&a, &a);
        prop_assert_eq!(aa.statistic, 0.0);
    }

    /// Wilson intervals contain the point estimate and are ordered.
    #[test]
    fn wilson_contains_estimate(successes in 0u64..1_000, extra in 0u64..1_000) {
        let trials = successes + extra + 1;
        let (lo, hi) = wilson_interval(successes, trials, 0.95);
        let p_hat = successes as f64 / trials as f64;
        prop_assert!(lo <= p_hat + 1e-12 && p_hat <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    /// Normal quantile inverts the CDF across the domain.
    #[test]
    fn normal_round_trip(p in 0.0005f64..0.9995) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-6);
    }

    /// Survival functions are monotone nonincreasing.
    #[test]
    fn survival_functions_monotone(x in 0.0f64..10.0, dx in 0.0f64..5.0, dof in 1usize..50) {
        prop_assert!(kolmogorov_sf(x + dx) <= kolmogorov_sf(x) + 1e-12);
        prop_assert!(chi2_sf(x + dx, dof) <= chi2_sf(x, dof) + 1e-9);
    }
}
