//! The paper's motivating scenario: per-page view counters for a large
//! site ("the number of visits to each page on Wikipedia"), where the
//! number of counters `M` is large and we want each one approximately
//! correct — so `δ ≪ 1/M` and per-counter bits matter.
//!
//! ```sh
//! cargo run --release --example wiki_page_views
//! ```

use approx_counting::prelude::*;
use approx_counting::randkit::Zipf;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
    let pages = 50_000usize;
    let views = 5_000_000u64;

    // Per-counter guarantee: 10 % accuracy, failure 2^-21 << 1/M.
    let dlog = 21u32;
    let eps = 0.1;
    let a = morris_a(eps, dlog).unwrap();
    println!(
        "site with {pages} pages, {views} views, Zipf popularity;\n\
         per-counter target eps = {eps}, delta = 2^-{dlog} (so that even with\n\
         {pages} counters, the chance *any* is off by >10% stays ~2%)\n"
    );

    let mut array = CounterArray::new(&MorrisCounter::new(a).unwrap(), pages);
    let mut truth = vec![0u64; pages];
    let zipf = Zipf::new(pages as u64, 1.05).unwrap();
    for _ in 0..views {
        let page = (zipf.sample(&mut rng) - 1) as usize;
        array.increment(page, &mut rng);
        truth[page] += 1;
    }

    println!("top pages (true vs estimated views):");
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "page", "true", "estimate", "rel err"
    );
    for page in [0usize, 1, 2, 10, 100, 1_000] {
        let t = truth[page];
        let e = array.estimate(page);
        let rel = if t > 0 {
            (e - t as f64).abs() / t as f64
        } else {
            0.0
        };
        println!(
            "{:<10} {:>12} {:>12.0} {:>8.2}%",
            page + 1,
            t,
            e,
            100.0 * rel
        );
    }

    // Storage accounting. A production table provisions every slot wide
    // enough for the count it *might* hold — any page could go viral, so
    // exact slots need bit_len(total views) bits, while a Morris slot can
    // never outgrow bit_len(level(total views)):
    let exact_slot = approx_counting::bitio::bit_len(views);
    let worst_level = MorrisCounter::expected_level(a, views).ceil() as u64 * 2;
    let morris_slot = approx_counting::bitio::bit_len(worst_level);
    println!("\nprovisioned fixed-width slots (any page could receive all views):");
    println!(
        "  exact : {exact_slot} bits/slot -> {} bits total",
        u64::from(exact_slot) * pages as u64
    );
    println!(
        "  morris: {morris_slot} bits/slot -> {} bits total",
        u64::from(morris_slot) * pages as u64
    );

    // Measured storage for the *current* state (Zipf tails are tiny, so
    // small pages cost the same either way — the win concentrates on the
    // busy pages and on provisioning).
    let exact_bits: u64 = truth
        .iter()
        .map(|&c| u64::from(approx_counting::bitio::bit_len(c)))
        .sum();
    let approx_bits = array.total_state_bits();
    let packed = array.pack();
    println!("\nmeasured register bits for the current counts:");
    println!(
        "  exact registers : {:>9} bits ({:.1}/counter)",
        exact_bits,
        exact_bits as f64 / pages as f64
    );
    println!(
        "  morris registers: {:>9} bits ({:.1}/counter)",
        approx_bits,
        approx_bits as f64 / pages as f64
    );
    println!(
        "  packed (Elias-d): {:>9} bits ({:.1}/counter)",
        packed.len(),
        packed.len() as f64 / pages as f64
    );

    // Round-trip through the packed representation: nothing is lost.
    let restored = CounterArray::unpack(&MorrisCounter::new(a).unwrap(), pages, &packed);
    assert!((0..pages).all(|k| restored.estimate(k) == array.estimate(k)));
    println!(
        "\npacked bit-stream round-trips exactly ({} bits total).",
        packed.len()
    );

    // How much total error did approximation introduce on busy pages?
    let mut worst: f64 = 0.0;
    let mut busy = 0u32;
    for (k, &t) in truth.iter().enumerate() {
        if t >= 1_000 {
            busy += 1;
            worst = worst.max((array.estimate(k) - t as f64).abs() / t as f64);
        }
    }
    println!(
        "worst relative error over the {busy} pages with >= 1000 views: {:.2}%",
        100.0 * worst
    );
}
