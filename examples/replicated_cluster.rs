//! A replicated counting cluster over loopback TCP — the networked
//! Store end to end, including a client crash and an exactly-once
//! replay.
//!
//! Two modes:
//!
//! * no arguments — an in-process drill: one `StoreServer`, two
//!   `ReplicaNode` mirrors, three clean remote writers on threads, and
//!   one writer that **crashes mid-stream** (socket dropped, no
//!   goodbye) and is resumed by a fresh client via the high-water-mark
//!   handshake. The drill proves exactly-once totals, (ε, δ)-band
//!   merged estimates, and digest-identical replica convergence.
//! * `cluster` — the same story with **separate processes**: the
//!   parent runs the server and re-spawns itself as writer, crashing
//!   writer, resuming writer, and replica children (CI wires this
//!   mode as the cross-process replication smoke).
//!
//! The remaining subcommands (`writer`, `crash-writer`,
//! `resume-writer`, `mirror`) are the child roles `cluster` spawns;
//! they are not meant to be invoked by hand.
//!
//! ```console
//! $ cargo run --release --example replicated_cluster
//! $ cargo run --release --example replicated_cluster -- cluster
//! ```

use approx_counting::prelude::*;
use std::io::Read as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: u32 = 8;
const SEED: u64 = 0xC0DE_CAFE;
const BATCH_PAIRS: usize = 64;

fn spec() -> CounterSpec {
    CounterSpec::NelsonYu {
        eps: 0.2,
        delta_log2: 8,
    }
}

/// The identity every peer must present at `HELLO`. A peer built with
/// a different spec, shard count, or seed is refused — the same rule
/// the manifest applies to checkpoint restores.
fn identity() -> Identity {
    Identity {
        spec: spec(),
        shards: SHARDS,
        seed: SEED,
    }
}

fn start_server() -> StoreServer {
    let store = Store::builder(spec())
        .with_shards(SHARDS as usize)
        .with_seed(SEED)
        .with_ingest(IngestConfig::new().with_batch_pairs(256))
        // Publish read replicas at a tight cadence so RPCs and the
        // replication cutter see progress mid-burst; the stream tail
        // below the cadence is published on quiesce.
        .with_snapshot_every_events(512)
        .start()
        .expect("store starts");
    StoreServer::start_with(
        store,
        "127.0.0.1:0",
        ServerConfig {
            delta_every_events: 2_048,
            cut_poll: Duration::from_millis(2),
            max_chain_segments: 8,
        },
    )
    .expect("server starts")
}

/// Writer `wid`'s deterministic workload: keys collide across writers
/// (every node counts the same hot set) and deltas vary per event.
fn workload(wid: u64) -> Vec<(u64, u64)> {
    (0..6_000u64)
        .map(|i| ((wid * 131 + i) % 900, 1 + (i + wid) % 7))
        .collect()
}

/// The workload pre-sliced into wire batches, so a crashed writer and
/// its resumer agree on what sequence number `n` contains.
fn batches(wid: u64) -> Vec<Vec<(u64, u64)>> {
    workload(wid)
        .chunks(BATCH_PAIRS)
        .map(<[(u64, u64)]>::to_vec)
        .collect()
}

fn events_of(wid: u64) -> u64 {
    workload(wid).iter().map(|&(_, d)| d).sum()
}

/// Claims a parked producer, retrying while the server still thinks
/// the crashed session is alive (it notices the dead socket within
/// one poll tick).
fn claim_parked(client: &StoreClient, producer: u64) -> NetWriter {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.writer_resuming(producer, WriterConfig::default()) {
            Ok(writer) => return writer,
            Err(NetError::Refused {
                code: RefuseCode::Busy,
                ..
            }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("claiming parked producer {producer}: {e}"),
        }
    }
}

/// Streams the first `upto` batches of `wid`'s workload and returns
/// the producer id — then the caller "crashes" (drops the socket with
/// batches beyond the flush never sent).
fn crash_partway(client: &StoreClient, wid: u64, upto: usize) -> u64 {
    let mut writer = client
        .writer(WriterConfig::default())
        .expect("writer connects");
    let producer = writer.producer_id();
    for batch in batches(wid).into_iter().take(upto) {
        writer.submit_batch(batch).expect("batch queued");
    }
    writer.flush().expect("queued batches acknowledged");
    // Dropping without `close()` sends no goodbye: to the server this
    // is a dead socket, and the producer parks at its durable mark.
    drop(writer);
    producer
}

/// Resumes `producer` and replays `wid`'s batches strictly after the
/// server's high-water mark — the exactly-once contract: nothing below
/// the mark is re-applied, nothing above it is skipped.
fn resume_and_finish(client: &StoreClient, wid: u64, producer: u64) -> u64 {
    let mut writer = claim_parked(client, producer);
    let resume_after = writer.resume_after();
    for batch in batches(wid).into_iter().skip(resume_after as usize) {
        writer.submit_batch(batch).expect("replayed batch queued");
    }
    writer.close().expect("clean close");
    resume_after
}

fn stream_clean(client: &StoreClient, wid: u64) {
    let mut writer = client
        .writer(WriterConfig::default())
        .expect("writer connects");
    for (key, delta) in workload(wid) {
        writer.record(key, delta);
    }
    writer.close().expect("clean close");
}

fn wait_for_total(reader: &mut RemoteReader, expected: u64, timeout: Duration) -> u64 {
    let deadline = Instant::now() + timeout;
    loop {
        let total = reader.total_events().expect("total RPC");
        if total >= expected || Instant::now() >= deadline {
            return total;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn in_process_drill() {
    let server = start_server();
    let addr = server.local_addr();
    println!("primary serving on {addr}");

    // Replicas attach before any data exists: they receive the full
    // base and then live delta segments.
    let replica_a = ReplicaNode::connect(addr, identity()).expect("replica A connects");
    let replica_b = ReplicaNode::connect(addr, identity()).expect("replica B connects");

    // Three clean writers stream concurrently from threads...
    let clean: Vec<u64> = vec![0, 1, 2];
    std::thread::scope(|s| {
        for &wid in &clean {
            s.spawn(move || {
                let client = StoreClient::new(addr, identity()).expect("client connects");
                stream_clean(&client, wid);
            });
        }
    });

    // ...and a fourth crashes mid-stream, then a fresh client resumes
    // its producer and replays the tail.
    let crashy_wid = 3u64;
    let client = StoreClient::new(addr, identity()).expect("client connects");
    let producer = crash_partway(&client, crashy_wid, batches(crashy_wid).len() / 2);
    println!("writer {crashy_wid} (producer {producer}) crashed mid-stream; resuming");
    let resume_after = resume_and_finish(&client, crashy_wid, producer);
    println!("server held seqs 1..={resume_after}; replayed the rest exactly once");

    // Exactly-once: the total is the *exact* sum of all four
    // workloads — a lost batch or a double-applied replay both break
    // this equality.
    let expected: u64 = (0..4).map(events_of).sum();
    let mut reader = client.reader().expect("reader connects");
    let total = wait_for_total(&mut reader, expected, Duration::from_secs(30));
    assert_eq!(total, expected, "exactly-once totals over the wire");

    let est = reader.merged_estimate().expect("merged estimate RPC");
    let rel = (est - expected as f64).abs() / expected as f64;
    println!(
        "remote reader at epoch {}: {total} events, merged estimate {est:.0} \
         (relative error {:.2}%)",
        reader.epoch(),
        100.0 * rel
    );
    assert!(rel < 0.2, "merged estimate within the (eps, delta) band");

    // Replicas converge to the primary's exact chain tip — digest
    // equality is byte-level equality of the replicated state.
    for (name, replica) in [("A", &replica_a), ("B", &replica_b)] {
        assert!(
            replica.wait_for_events(expected, Duration::from_secs(30)),
            "replica {name} converges"
        );
        assert!(
            replica.wait_for_chain(server.tip_chain(), Duration::from_secs(30)),
            "replica {name} reaches the tip digest"
        );
        println!(
            "replica {name}: {} events over {} keys, chain {:#018x}, {} folds",
            replica.total_events(),
            replica.len(),
            replica.chain_digest(),
            replica.folds()
        );
    }
    assert_eq!(replica_a.chain_digest(), replica_b.chain_digest());
    let merged_a = replica_a.merged_estimate().expect("replica A merge");
    let merged_b = replica_b.merged_estimate().expect("replica B merge");
    assert_eq!(
        merged_a.to_bits(),
        merged_b.to_bits(),
        "identical state + identical epoch => identical merged estimate"
    );

    reader.close();
    drop(replica_a);
    drop(replica_b);
    let report = server.shutdown().expect("server shutdown");
    assert_eq!(report.stats.events, expected);
    println!("in-process drill OK: {expected} events, exactly once, on 3 nodes");
}

/// Spawns this example again as a child in `role` with `args`.
fn spawn_child(role: &str, args: &[String]) -> std::process::Child {
    let exe = std::env::current_exe().expect("current exe");
    Command::new(exe)
        .arg(role)
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {role}: {e}"))
}

fn wait_child(mut child: std::process::Child, role: &str) -> String {
    let mut out = String::new();
    if let Some(stdout) = child.stdout.as_mut() {
        let _ = stdout.read_to_string(&mut out);
    }
    let status = child.wait().expect("child reaped");
    assert!(status.success(), "{role} failed: {status}\n{out}");
    print!("{out}");
    out
}

/// Extracts `key=value` from a child's stdout.
fn field(out: &str, key: &str) -> u64 {
    out.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("child output missing {key}=: {out:?}"))
}

fn cluster_drill() {
    let server = start_server();
    let addr = server.local_addr().to_string();
    println!("primary serving on {addr}; spawning child processes");

    // The replica child attaches first and waits for the whole load.
    let expected: u64 = (0..3).map(events_of).sum();
    let mirror = spawn_child("mirror", &[addr.clone(), expected.to_string()]);

    // Two clean writer processes, plus one that crashes mid-stream.
    let writers: Vec<_> = (0..2)
        .map(|wid| spawn_child("writer", &[addr.clone(), wid.to_string()]))
        .collect();
    let crashy = wait_child(
        spawn_child("crash-writer", &[addr.clone(), "2".into()]),
        "crash-writer",
    );
    let producer = field(&crashy, "producer");
    let resume = wait_child(
        spawn_child(
            "resume-writer",
            &[addr.clone(), "2".into(), producer.to_string()],
        ),
        "resume-writer",
    );
    assert!(
        field(&resume, "resumed_after") > 0,
        "a real mid-stream mark"
    );
    for (wid, child) in writers.into_iter().enumerate() {
        wait_child(child, &format!("writer {wid}"));
    }

    // The mirror process exits zero only after reaching the expected
    // total; its printed digest must equal the primary's tip.
    let mirror_out = wait_child(mirror, "mirror");
    assert_eq!(field(&mirror_out, "events"), expected);

    let mut local = server.reader();
    let deadline = Instant::now() + Duration::from_secs(30);
    while local.total_events() < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        local.refresh();
    }
    assert_eq!(
        local.total_events(),
        expected,
        "exactly-once totals across process boundaries"
    );
    assert_eq!(
        field(&mirror_out, "chain"),
        server.tip_chain(),
        "replica process converged to the primary's chain digest"
    );
    let report = server.shutdown().expect("server shutdown");
    assert_eq!(report.stats.events, expected);
    println!("cluster drill OK: {expected} events, exactly once, across processes");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    match argv.as_slice() {
        [_] => in_process_drill(),
        [_, "cluster"] => cluster_drill(),
        [_, "writer", addr, wid] => {
            let wid: u64 = wid.parse().expect("writer id");
            let client = StoreClient::new(addr, identity()).expect("client connects");
            stream_clean(&client, wid);
            println!("writer {wid} done: events={}", events_of(wid));
        }
        [_, "crash-writer", addr, wid] => {
            let wid: u64 = wid.parse().expect("writer id");
            let client = StoreClient::new(addr, identity()).expect("client connects");
            let upto = batches(wid).len() / 2;
            let producer = crash_partway(&client, wid, upto);
            println!("crash-writer {wid} dying mid-stream: producer={producer}");
            // A real crash: no destructors, no goodbye, the OS reaps
            // the socket.
            std::process::exit(0);
        }
        [_, "resume-writer", addr, wid, producer] => {
            let wid: u64 = wid.parse().expect("writer id");
            let producer: u64 = producer.parse().expect("producer id");
            let client = StoreClient::new(addr, identity()).expect("client connects");
            let resume_after = resume_and_finish(&client, wid, producer);
            println!("resume-writer {wid} done: resumed_after={resume_after}");
        }
        [_, "mirror", addr, expected] => {
            let expected: u64 = expected.parse().expect("expected events");
            let replica = ReplicaNode::connect(addr, identity()).expect("replica connects");
            assert!(
                replica.wait_for_events(expected, Duration::from_secs(60)),
                "replica converges to the full load (saw {} of {expected}; {:?})",
                replica.total_events(),
                replica.failed()
            );
            println!(
                "mirror done: events={} keys={} chain={} folds={}",
                replica.total_events(),
                replica.len(),
                replica.chain_digest(),
                replica.folds()
            );
        }
        _ => {
            eprintln!("usage: replicated_cluster [cluster]");
            std::process::exit(2);
        }
    }
}
