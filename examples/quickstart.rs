//! Quickstart: count a million events in a handful of bits.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use approx_counting::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2022);
    let n = 1_000_000u64;

    println!("counting N = {n} increments with every algorithm in the paper:\n");
    println!(
        "{:<34} {:>14} {:>9} {:>28}",
        "counter", "estimate", "rel err", "state (bits)"
    );

    // The naive exact counter: the log2(N)-bit baseline.
    let mut exact = ExactCounter::new();
    exact.increment_by(n, &mut rng);
    report("exact", &exact, n);

    // Morris' original 1978 counter (base 2).
    let mut classic = MorrisCounter::classic();
    classic.increment_by(n, &mut rng);
    report("Morris(1) [Mor78]", &classic, n);

    // Morris with a smaller base: more accuracy for a few more bits.
    let mut fine = MorrisCounter::new(0.01).unwrap();
    fine.increment_by(n, &mut rng);
    report("Morris(0.01)", &fine, n);

    // Morris+ at target (eps, delta) — Theorem 1.2's optimal counter.
    let mut plus = MorrisPlus::new(0.05, 10).unwrap();
    plus.increment_by(n, &mut rng);
    report("Morris+ (eps=0.05, d=2^-10)", &plus, n);

    // The paper's new Algorithm 1.
    let params = NyParams::new(0.05, 10).unwrap();
    let mut ny = NelsonYuCounter::new(params);
    ny.increment_by(n, &mut rng);
    report("Nelson-Yu Alg.1 (eps=0.05, 2^-10)", &ny, n);

    // The Csuros floating-point counter (the "simplified Alg.1" of Fig.1).
    let mut cs = CsurosCounter::new(10).unwrap();
    cs.increment_by(n, &mut rng);
    report("Csuros float (d=10) [Csu10]", &cs, n);

    println!(
        "\nevery approximate counter above stores *exponentially* fewer bits than\n\
         the {}-bit exact register — that tradeoff, and its optimal form, is the\n\
         subject of the paper.",
        exact.state_bits()
    );
}

fn report<C: ApproxCounter>(name: &str, counter: &C, n: u64) {
    let est = counter.estimate();
    let rel = (est - n as f64).abs() / n as f64;
    println!(
        "{:<34} {:>14.1} {:>8.2}% {:>28}",
        name,
        est,
        100.0 * rel,
        counter.memory_audit().render(),
    );
}
