//! The `Store` service facade, end to end — including a crash and a
//! cross-process recovery.
//!
//! Three modes:
//!
//! * no arguments — an in-process drill: start a durable store, hammer it
//!   from several writer threads while a reader queries, **kill it**
//!   (simulated crash: no close-time checkpoint), tear the newest delta
//!   frame in half (simulated torn write), then `Store::open` the
//!   directory and verify the recovery report against the disk state;
//! * `write <dir>` — run a deterministic single-writer workload against a
//!   durable store and close cleanly (the close-time frame makes the full
//!   state durable);
//! * `recover <dir>` — run as a *fresh process*: reopen the directory and
//!   assert the restored totals equal the deterministic workload's,
//!   proving durability across a process boundary (CI wires write and
//!   recover as separate invocations).
//!
//! ```console
//! $ cargo run --release --example store_service
//! $ cargo run --release --example store_service -- write  /tmp/ac-store
//! $ cargo run --release --example store_service -- recover /tmp/ac-store
//! ```

use approx_counting::prelude::*;
use std::path::Path;

fn spec() -> CounterSpec {
    CounterSpec::NelsonYu {
        eps: 0.2,
        delta_log2: 8,
    }
}

/// The deterministic workload `write` records and `recover` checks.
fn deterministic_workload() -> Vec<(u64, u64)> {
    (0..5_000u64).map(|k| (k, 1 + k % 13)).collect()
}

fn expected_total() -> u64 {
    deterministic_workload().iter().map(|&(_, d)| d).sum()
}

fn write_mode(dir: &Path) {
    let store = Store::builder(spec())
        .with_shards(8)
        .with_seed(0x0057_031E)
        .with_durability(dir)
        .with_checkpoint_every_events(10_000)
        .with_snapshot_every_events(5_000)
        .start()
        .expect("start durable store");
    let mut writer = store.writer();
    for &(key, delta) in &deterministic_workload() {
        writer.record(key, delta);
    }
    writer.flush().expect("lossless flush");
    let report = store.close().expect("clean close");
    println!(
        "wrote {} events over {} keys to {}; {} checkpoint frames ({} bytes), \
         producer 0 applied through seq {}",
        report.stats.events,
        report.stats.keys,
        dir.display(),
        report.checkpoints.as_ref().map_or(0, |c| c.records.len()),
        report.checkpoints.as_ref().map_or(0, |c| c
            .records
            .iter()
            .map(|r| r.bytes_len)
            .sum::<u64>()),
        report.stats.producers.first().map_or(0, |m| m.applied_seq),
    );
    assert_eq!(report.stats.events, expected_total());
}

fn recover_mode(dir: &Path) {
    let store = Store::open(dir).expect("reopen durability directory");
    let recovery = store.recovery().expect("opened from disk").clone();
    let reader = store.reader();
    println!(
        "reopened {}: {} frames in manifest, {} used, {} skipped; \
         {} events / {} keys restored; last applied seqs: {:?}",
        dir.display(),
        recovery.frames_in_manifest,
        recovery.frames_used,
        recovery.frames_skipped,
        recovery.events,
        recovery.keys,
        recovery
            .last_applied
            .iter()
            .map(|m| (m.producer, m.applied_seq))
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        reader.total_events(),
        expected_total(),
        "clean close must have made the full workload durable"
    );
    assert_eq!(recovery.events, expected_total());
    assert_eq!(recovery.keys, 5_000);
    // Spot-check a few per-key estimates against their exact deltas.
    for key in [0u64, 13, 777, 4_999] {
        let exact = (1 + key % 13) as f64;
        let est = reader.estimate(key).expect("key restored");
        assert!(
            est >= 1.0 && est <= 60.0 * exact,
            "key {key}: estimate {est} vs exact {exact}"
        );
    }
    store.close().expect("clean close");
    println!("recover OK: totals match the deterministic workload exactly");
}

fn crash_drill() {
    let dir = std::env::temp_dir().join(format!("ac-store-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("crash drill in {}", dir.display());

    // Start a durable store and hammer it from three writers while a
    // reader polls.
    let store = Store::builder(spec())
        .with_shards(8)
        .with_durability(&dir)
        .with_checkpoint_every_events(20_000)
        .with_snapshot_every_events(10_000)
        .start()
        .expect("start durable store");
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let mut writer = store.writer();
            s.spawn(move || {
                for i in 0..40_000u64 {
                    writer.record((t * 1_000 + i) % 7_000, 1 + i % 5);
                }
                writer.flush().expect("lossless flush");
            });
        }
        let mut reader = store.reader();
        s.spawn(move || {
            for _ in 0..50 {
                reader.refresh();
                std::thread::yield_now();
            }
        });
    });
    let submitted = store.stats().ingest.enqueued_events;
    println!("writers submitted {submitted} events; killing the store mid-flight");
    store.kill(); // simulated crash: no close-time checkpoint frame

    // Tear the newest delta frame (simulated torn write), when one
    // exists — recovery must fall back past it.
    let manifest = Manifest::load(&dir).expect("manifest survives the crash");
    let torn = manifest
        .frames
        .iter()
        .rev()
        .find(|f| f.kind == CheckpointKind::Delta)
        .filter(|f| f.chain == manifest.frames.last().unwrap().chain)
        .map(|f| dir.join(&f.file));
    if let Some(path) = &torn {
        let bytes = std::fs::read(path).expect("read tail frame");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("tear tail frame");
        println!("tore the newest delta frame in half: {}", path.display());
    }

    // Recover. The report says exactly how far the durable state got and
    // where each producer should resume.
    let store = Store::open(&dir).expect("recover the directory");
    let recovery = store.recovery().expect("opened from disk").clone();
    println!(
        "recovered: {} of {} frames used ({} skipped), {} events / {} keys; \
         replay cursors: {:?}",
        recovery.frames_used,
        recovery.frames_in_manifest,
        recovery.frames_skipped,
        recovery.events,
        recovery.keys,
        recovery
            .last_applied
            .iter()
            .map(|m| (m.producer, m.applied_seq))
            .collect::<Vec<_>>(),
    );
    assert!(recovery.events <= submitted, "never more than was written");
    assert_eq!(store.reader().total_events(), recovery.events);
    if torn.is_some() {
        assert!(
            recovery.frames_skipped >= 1,
            "the torn tail must have been skipped"
        );
    }

    // The reopened store keeps serving: write a little more and close
    // cleanly.
    let mut writer = store.writer();
    for key in 0..100u64 {
        writer.record(key, 7);
    }
    writer.flush().expect("lossless flush");
    let report = store.close().expect("clean close");
    println!(
        "post-recovery writes applied; final state: {} events / {} keys",
        report.stats.events, report.stats.keys
    );
    assert_eq!(report.stats.events, recovery.events + 700);
    let _ = std::fs::remove_dir_all(&dir);
    println!("crash drill OK");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.as_slice() {
        [_] => crash_drill(),
        [_, mode, path] if mode == "write" => write_mode(Path::new(path)),
        [_, mode, path] if mode == "recover" => recover_mode(Path::new(path)),
        _ => {
            eprintln!("usage: store_service [write <dir> | recover <dir>]");
            std::process::exit(2);
        }
    }
}
