//! ℓ₁ heavy hitters with approximate counters ([BDW19]-flavored
//! SpaceSaving) — one of the streaming applications the paper's
//! introduction cites for approximate counting.
//!
//! ```sh
//! cargo run --release --example heavy_hitters
//! ```

use approx_counting::prelude::*;
use approx_counting::randkit::Zipf;
use approx_counting::streams::HeavyHitter;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
    let universe = 100_000u64;
    let stream_len = 2_000_000usize;
    let slots = 24;

    println!(
        "stream of {stream_len} items over a {universe}-key universe \
         (Zipf s = 1.2); {slots} SpaceSaving slots\n"
    );

    let zipf = Zipf::new(universe, 1.2).unwrap();
    let mut truth = std::collections::HashMap::<u64, u64>::new();

    // Two summaries side by side: classical (exact slot counters) and
    // small-space (Morris slot counters).
    let mut exact_ss = SpaceSaving::new(slots, &ExactCounter::new());
    let mut morris_ss = SpaceSaving::new(slots, &MorrisCounter::new(0.05).unwrap());

    for _ in 0..stream_len {
        let item = zipf.sample(&mut rng);
        exact_ss.offer(item, &mut rng);
        morris_ss.offer(item, &mut rng);
        *truth.entry(item).or_insert(0) += 1;
    }

    let top = |report: Vec<HeavyHitter>, k: usize| -> Vec<HeavyHitter> {
        report.into_iter().take(k).collect()
    };

    println!(
        "{:<8} {:>10} | {:>12} | {:>12}",
        "item", "true", "exact SS", "Morris SS"
    );
    for (e, m) in top(exact_ss.report(), 8)
        .iter()
        .zip(top(morris_ss.report(), 8).iter())
    {
        println!(
            "{:<8} {:>10} | {:>12.0} | {:>12.0}",
            e.item,
            truth.get(&e.item).copied().unwrap_or(0),
            e.estimate,
            m.estimate,
        );
    }

    println!(
        "\nslot-counter storage: exact {} bits, Morris {} bits — the counter is\n\
         where SpaceSaving spends its memory, and approximate counting shrinks it\n\
         from O(log n) to O(log log n) per slot.",
        exact_ss.counter_state_bits(),
        morris_ss.counter_state_bits()
    );

    // Sanity: the two summaries agree on the head of the distribution.
    let exact_top: Vec<u64> = top(exact_ss.report(), 3).iter().map(|h| h.item).collect();
    let morris_top: Vec<u64> = top(morris_ss.report(), 3).iter().map(|h| h.item).collect();
    println!("\ntop-3 agreement: exact {exact_top:?} vs morris {morris_top:?}");
}
