//! Cross-process checkpoint/restore: `write` serializes a deterministic
//! engine to disk; `restore`, run as a *fresh process*, rebuilds the same
//! reference engine from the shared seed and verifies the restored one
//! matches it key for key. CI runs the two as separate invocations, so
//! durability is proven across a process boundary, not just in memory.
//!
//! ```console
//! $ cargo run --release --example checkpoint_roundtrip -- write  /tmp/engine.ckpt
//! $ cargo run --release --example checkpoint_roundtrip -- restore /tmp/engine.ckpt
//! ```

use approx_counting::engine::{
    checkpoint_snapshot, restore_checkpoint, CounterEngine, EngineConfig,
};
use approx_counting::prelude::*;

const KEYS: u64 = 10_000;
const CONFIG: EngineConfig = EngineConfig {
    shards: 8,
    seed: 0xC1AC_C0DE,
};

fn template() -> NelsonYuCounter {
    NelsonYuCounter::new(NyParams::new(0.2, 8).expect("valid parameters"))
}

/// The deterministic reference workload both processes can rebuild.
fn reference_engine() -> CounterEngine<NelsonYuCounter> {
    let mut engine = CounterEngine::new(template(), CONFIG);
    let mut gen = SplitMix64::new(0xFEED);
    let batch: Vec<(u64, u64)> = (0..KEYS)
        .map(|k| (k * 31 + 7, 1 + gen.next_u64() % 4_096))
        .collect();
    engine.apply(&batch);
    engine
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: checkpoint_roundtrip <write|restore> <path>";
    let (mode, path) = match args.as_slice() {
        [_, mode, path] => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };

    match mode {
        "write" => {
            let engine = reference_engine();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
            let snap = engine.snapshot(&mut rng).expect("snapshot");
            let ck = checkpoint_snapshot(&snap);
            std::fs::write(path, ck.bytes()).expect("write checkpoint");
            let s = ck.stats();
            println!(
                "wrote {} keys / {} events to {path}: {} bytes \
                 ({} state bits live, {} bits on disk)",
                s.keys,
                engine.total_events(),
                s.bytes(),
                s.counter_state_bits,
                s.total_bits
            );
        }
        "restore" => {
            let bytes = std::fs::read(path).expect("read checkpoint");
            let restored = restore_checkpoint(&template(), &bytes).expect("restore checkpoint");
            let reference = reference_engine();
            assert_eq!(restored.len(), reference.len(), "key count");
            assert_eq!(restored.total_events(), reference.total_events(), "events");
            assert_eq!(restored.config(), reference.config(), "config");
            let mut checked = 0u64;
            for (key, counter) in reference.iter() {
                let back = restored.counter(key).expect("restored key");
                assert_eq!(back.state_parts(), counter.state_parts(), "key {key}");
                assert_eq!(back.estimate(), counter.estimate(), "key {key}");
                assert_eq!(back.state_bits(), counter.state_bits(), "key {key}");
                checked += 1;
            }
            println!(
                "restored {checked} keys from {path} in a fresh process: \
                 every state bit-identical to the reference engine"
            );
        }
        other => {
            eprintln!("unknown mode '{other}'; {usage}");
            std::process::exit(2);
        }
    }
}
