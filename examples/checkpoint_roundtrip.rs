//! Cross-process checkpoint/restore, full and incremental: `write`
//! serializes a deterministic engine to disk and `restore`, run as a
//! *fresh process*, rebuilds the same reference engine from the shared
//! seed and verifies the restored one matches it key for key.
//! `chain-write` cuts a base checkpoint plus two deltas (each after
//! dirtying a few shards); `chain-restore` folds the chain in a fresh
//! process, verifies it bit-for-bit against the replayed reference, and
//! proves a truncated delta is *rejected* rather than silently folded.
//! CI runs write and restore as separate invocations, so durability is
//! proven across a process boundary, not just in memory.
//!
//! ```console
//! $ cargo run --release --example checkpoint_roundtrip -- write  /tmp/engine.ckpt
//! $ cargo run --release --example checkpoint_roundtrip -- restore /tmp/engine.ckpt
//! $ cargo run --release --example checkpoint_roundtrip -- chain-write  /tmp/ckpt-dir
//! $ cargo run --release --example checkpoint_roundtrip -- chain-restore /tmp/ckpt-dir
//! ```

use approx_counting::engine::{
    checkpoint_delta, checkpoint_snapshot, restore_checkpoint, restore_checkpoint_chain,
    CounterEngine, EngineConfig,
};
use approx_counting::prelude::*;
use std::path::Path;

const KEYS: u64 = 10_000;
const CONFIG: EngineConfig = EngineConfig::new().with_shards(8).with_seed(0xC1AC_C0DE);

fn template() -> NelsonYuCounter {
    NelsonYuCounter::new(NyParams::new(0.2, 8).expect("valid parameters"))
}

/// The deterministic base workload both processes can rebuild.
fn base_batch() -> Vec<(u64, u64)> {
    let mut gen = SplitMix64::new(0xFEED);
    (0..KEYS)
        .map(|k| (k * 31 + 7, 1 + gen.next_u64() % 4_096))
        .collect()
}

/// The two deterministic post-base rounds the delta frames capture: each
/// round hammers base keys that all route to one shard, so each delta
/// serializes exactly one dirty shard out of eight.
fn delta_batches(engine: &CounterEngine<NelsonYuCounter>) -> [Vec<(u64, u64)>; 2] {
    let keys_in_shard = |shard: usize, n: usize| -> Vec<u64> {
        (0..KEYS)
            .map(|k| k * 31 + 7)
            .filter(|&k| engine.shard_of(k) == shard)
            .take(n)
            .collect()
    };
    let hit = |keys: Vec<u64>, base: u64| -> Vec<(u64, u64)> {
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| (k, base + i as u64))
            .collect()
    };
    [
        hit(keys_in_shard(0, 40), 1_000),
        hit(keys_in_shard(1, 25), 50),
    ]
}

fn reference_engine() -> CounterEngine<NelsonYuCounter> {
    let mut engine = CounterEngine::new(template(), CONFIG);
    engine.apply(&base_batch());
    engine
}

/// Replays base + both delta rounds — the state the chain tip describes.
fn reference_engine_after_deltas() -> CounterEngine<NelsonYuCounter> {
    let mut engine = reference_engine();
    let _ = engine.snapshot(); // same freeze points as chain-write
    for batch in delta_batches(&engine) {
        engine.apply(&batch);
        let _ = engine.snapshot();
    }
    engine
}

fn verify_matches(
    restored: &CounterEngine<NelsonYuCounter>,
    reference: &CounterEngine<NelsonYuCounter>,
) -> u64 {
    assert_eq!(restored.len(), reference.len(), "key count");
    assert_eq!(restored.total_events(), reference.total_events(), "events");
    assert_eq!(restored.config(), reference.config(), "config");
    let mut checked = 0u64;
    for (key, counter) in reference.iter() {
        let back = restored.counter(key).expect("restored key");
        assert_eq!(back.state_parts(), counter.state_parts(), "key {key}");
        assert_eq!(back.estimate(), counter.estimate(), "key {key}");
        assert_eq!(back.state_bits(), counter.state_bits(), "key {key}");
        checked += 1;
    }
    checked
}

fn chain_paths(dir: &Path) -> [std::path::PathBuf; 3] {
    [
        dir.join("base.ckpt"),
        dir.join("delta-1.ckpt"),
        dir.join("delta-2.ckpt"),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: checkpoint_roundtrip <write|restore|chain-write|chain-restore> <path>";
    let (mode, path) = match args.as_slice() {
        [_, mode, path] => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };

    match mode {
        "write" => {
            let mut engine = reference_engine();
            let snap = engine.snapshot();
            let ck = checkpoint_snapshot(&snap);
            std::fs::write(path, ck.bytes()).expect("write checkpoint");
            let s = ck.stats();
            println!(
                "wrote {} keys / {} events to {path}: {} bytes \
                 ({} state bits live, {} bits on disk)",
                s.keys,
                engine.total_events(),
                s.bytes(),
                s.counter_state_bits,
                s.total_bits
            );
        }
        "restore" => {
            let bytes = std::fs::read(path).expect("read checkpoint");
            let restored = restore_checkpoint(&template(), &bytes).expect("restore checkpoint");
            let checked = verify_matches(&restored, &reference_engine());
            println!(
                "restored {checked} keys from {path} in a fresh process: \
                 every state bit-identical to the reference engine"
            );
        }
        "chain-write" => {
            let dir = Path::new(path);
            std::fs::create_dir_all(dir).expect("create chain directory");
            let [base_path, d1_path, d2_path] = chain_paths(dir);

            let mut engine = reference_engine();
            let base = checkpoint_snapshot(&engine.snapshot());
            std::fs::write(&base_path, base.bytes()).expect("write base");

            let [round1, round2] = delta_batches(&engine);
            engine.apply(&round1);
            let d1 = checkpoint_delta(&engine.snapshot(), &base.header())
                .expect("delta against own base");
            std::fs::write(&d1_path, d1.bytes()).expect("write delta 1");

            engine.apply(&round2);
            let d2 =
                checkpoint_delta(&engine.snapshot(), &d1.header()).expect("delta against delta 1");
            std::fs::write(&d2_path, d2.bytes()).expect("write delta 2");

            println!(
                "wrote chain to {path}: base {} bytes ({} shards), \
                 delta-1 {} bytes ({} dirty shards), delta-2 {} bytes ({} dirty shards)",
                base.bytes().len(),
                base.stats().shards_written,
                d1.bytes().len(),
                d1.stats().shards_written,
                d2.bytes().len(),
                d2.stats().shards_written,
            );
            assert!(
                d1.bytes().len() * 4 < base.bytes().len()
                    && d2.bytes().len() * 4 < base.bytes().len(),
                "deltas must be far smaller than the base"
            );
        }
        "chain-restore" => {
            let dir = Path::new(path);
            let segments: Vec<Vec<u8>> = chain_paths(dir)
                .iter()
                .map(|p| std::fs::read(p).expect("read chain segment"))
                .collect();
            let refs: Vec<&[u8]> = segments.iter().map(Vec::as_slice).collect();
            let restored = restore_checkpoint_chain(&template(), &refs).expect("restore chain");
            let checked = verify_matches(&restored, &reference_engine_after_deltas());

            // A truncated final delta must be refused, never half-folded.
            let truncated = &segments[2][..segments[2].len() / 2];
            let err =
                restore_checkpoint_chain(&template(), &[&segments[0], &segments[1], truncated])
                    .expect_err("truncated delta must not restore");
            println!(
                "restored {checked} keys from a base+2-delta chain in a fresh process: \
                 every state bit-identical; truncated delta rejected with `{err}`"
            );
        }
        other => {
            eprintln!("unknown mode '{other}'; {usage}");
            std::process::exit(2);
        }
    }
}
