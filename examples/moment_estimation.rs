//! Frequency-moment estimation with approximate counters ([AMS99] +
//! [GS09]) — the paper's flagship theoretical application: "applying
//! approximate counting for computing the frequency moments of long data
//! streams".
//!
//! ```sh
//! cargo run --release --example moment_estimation
//! ```

use approx_counting::prelude::*;
use approx_counting::randkit::Zipf;
use approx_counting::streams::{exact_frequency_moment, AmsMomentEstimator};

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let universe = 100u64;
    let stream_len = 100_000usize;

    // A skewed stream, where F2 (the "surprise index") is dominated by
    // the head items.
    let zipf = Zipf::new(universe, 1.1).unwrap();
    let stream: Vec<u64> = (0..stream_len).map(|_| zipf.sample(&mut rng)).collect();
    let exact_f2 = exact_frequency_moment(&stream, 2);
    println!(
        "stream of {stream_len} items over {universe} keys (Zipf 1.1); \
         exact F2 = {exact_f2:.3e}\n"
    );

    // AMS with Morris suffix counters, averaged over several runs (AMS
    // has high per-copy variance by design; copies × runs tame it).
    let copies = 64;
    let runs = 20;
    let mut total = 0.0;
    let mut suffix_bits = 0u64;
    for seed in 0..runs {
        let mut est = AmsMomentEstimator::new(2, copies, 0.01).unwrap();
        let mut r = Xoshiro256PlusPlus::seed_from_u64(1_000 + seed);
        for &x in &stream {
            est.push(x, &mut r);
        }
        total += est.estimate();
        suffix_bits += est.suffix_counter_bits();
    }
    let mean = total / f64::from(runs as u32);
    let ratio = mean / exact_f2;
    println!("AMS + Morris(0.01) suffix counters, {copies} copies × {runs} runs:");
    println!("  estimate ratio to exact F2: {ratio:.3}");
    println!(
        "  suffix-counter storage: {:.1} bits/copy (exact suffix counters \
         would need up to {} bits each)",
        suffix_bits as f64 / f64::from(runs as u32) / copies as f64,
        approx_counting::bitio::bit_len(stream_len as u64),
    );
    println!(
        "\n[GS09]'s point, measured: the per-copy tracking counter costs \
         O(log log n) instead of O(log n), while the AMS estimator keeps working."
    );

    // Third moment for contrast (heavier tail sensitivity).
    let exact_f3 = exact_frequency_moment(&stream, 3);
    let mut est3 = AmsMomentEstimator::new(3, 128, 0.01).unwrap();
    let mut r = Xoshiro256PlusPlus::seed_from_u64(99);
    for &x in &stream {
        est3.push(x, &mut r);
    }
    println!(
        "\nF3: exact {exact_f3:.3e}, one 128-copy AMS estimate {:.3e} (ratio {:.2})",
        est3.estimate(),
        est3.estimate() / exact_f3
    );
}
