//! Distributed counting with mergeable counters (Remark 2.4).
//!
//! Ten "servers" each count their local share of a global event stream
//! with a Nelson–Yu counter; the coordinator merges the ten counters and
//! obtains an estimate whose distribution is *identical* to a single
//! counter that saw the whole stream — nothing is lost in ε or δ.
//!
//! ```sh
//! cargo run --release --example distributed_merge
//! ```

use approx_counting::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
    let params = NyParams::new(0.1, 12).unwrap();

    // Uneven shard loads, as in any real system.
    let shard_loads: [u64; 10] = [
        1_200_000, 40_000, 733_000, 2_500_000, 90, 610_000, 1_000, 88_000, 1_999_000, 420_000,
    ];
    let total: u64 = shard_loads.iter().sum();

    println!("10 servers count their local streams independently:\n");
    let mut shards: Vec<NelsonYuCounter> = Vec::new();
    for (i, &load) in shard_loads.iter().enumerate() {
        let mut c = NelsonYuCounter::new(params);
        c.increment_by(load, &mut rng);
        println!(
            "  server {i:>2}: {load:>9} events -> estimate {:>12.0} ({} bits)",
            c.estimate(),
            c.state_bits()
        );
        shards.push(c);
    }

    // The coordinator folds all shards into one counter.
    let mut global = shards.pop().expect("ten shards");
    for shard in &shards {
        global.merge_from(shard, &mut rng).expect("same schedule");
    }

    let est = global.estimate();
    let rel = (est - total as f64).abs() / total as f64;
    println!("\ncoordinator after merging all 10 counters:");
    println!("  true total : {total}");
    println!(
        "  estimate   : {est:.0}  (relative error {:.2}%)",
        100.0 * rel
    );
    println!("  state      : {} bits", global.state_bits());
    println!(
        "\nRemark 2.4: the merged counter follows the same distribution as one\n\
         counter incremented {total} times — validated statistically by\n\
         `cargo run --release -p ac-bench --bin exp_merge_law`."
    );
}
