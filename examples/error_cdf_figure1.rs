//! A runnable miniature of the paper's Figure 1: error CDFs of the
//! Morris counter and the simplified Algorithm 1 (Csűrös counter), both
//! planned to a 17-bit memory budget.
//!
//! (The full-size regeneration with 5,000 trials lives in
//! `cargo run --release -p ac-bench --bin fig1_error_cdf`.)
//!
//! ```sh
//! cargo run --release --example error_cdf_figure1
//! ```

use approx_counting::core::budget::{plan_csuros, plan_morris, DEFAULT_SLACK_SIGMAS};
use approx_counting::prelude::*;
use approx_counting::sim::plot::{ascii_chart, Series};

fn main() {
    let trials = 1_000;
    let bits = 17;
    let workload = Workload::figure1(); // N ~ Uniform[500000, 999999]

    let morris = plan_morris(bits, workload.max_n(), DEFAULT_SLACK_SIGMAS).unwrap();
    let csuros = plan_csuros(bits, workload.max_n(), DEFAULT_SLACK_SIGMAS).unwrap();
    println!(
        "Figure 1 miniature: {trials} trials/algorithm, N ~ Uniform[500000, 999999],\n\
         Morris(a = {:.2e}) and Csuros(d = {}) both capped at {bits} bits\n",
        morris.a(),
        csuros.mantissa_bits()
    );

    let runner = TrialRunner::new(workload, trials).with_seed(1);
    let m_results = runner.run(&morris);
    let c_results = runner.run(&csuros);

    let series = vec![
        Series::new(
            "Morris",
            m_results
                .error_ecdf()
                .percentile_curve(101)
                .into_iter()
                .map(|(p, e)| (p, 100.0 * e))
                .collect(),
        ),
        Series::new(
            "simplified Alg.1 (Csuros)",
            c_results
                .error_ecdf()
                .percentile_curve(101)
                .into_iter()
                .map(|(p, e)| (p, 100.0 * e))
                .collect(),
        ),
    ];
    println!("x = % of trial runs, y = relative error (%) not exceeded:");
    print!("{}", ascii_chart(&series, 64, 18));

    println!(
        "\nmax relative error: Morris {:.2}%, Csuros {:.2}% (paper, 5000 runs: 2.37%)",
        100.0 * m_results.error_ecdf().max(),
        100.0 * c_results.error_ecdf().max()
    );
    println!(
        "peak memory: Morris {} bits, Csuros {} bits (budget: {bits})",
        m_results.peak_bits_summary().max(),
        c_results.peak_bits_summary().max()
    );
    println!(
        "\n\"The experimental results are plainly apparent: the two algorithms'\n\
         empirical performances are nearly identical!\" — §4 of the paper"
    );
}
