//! Cross-crate property-based tests (proptest): invariants that must
//! hold for *arbitrary* parameters, seeds and interleavings.

use approx_counting::bitio::{BitReader, BitVec, BitWriter};
use approx_counting::prelude::*;
use approx_counting::streams::PackState;
use proptest::prelude::*;

proptest! {
    /// Estimates never decrease as more increments arrive, for every
    /// algorithm and any seed.
    #[test]
    fn estimates_are_monotone(seed in any::<u64>(), chunks in prop::collection::vec(0u64..5_000, 1..12)) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let p = NyParams::new(0.3, 6).unwrap();
        let mut counters: Vec<Box<dyn ApproxCounter>> = vec![
            Box::new(ExactCounter::new()),
            Box::new(MorrisCounter::classic()),
            Box::new(MorrisPlus::new(0.2, 6).unwrap()),
            Box::new(NelsonYuCounter::new(p)),
            Box::new(CsurosCounter::new(6).unwrap()),
        ];
        for c in &mut counters {
            let mut prev = c.estimate();
            for &chunk in &chunks {
                c.increment_by(chunk, &mut rng);
                let now = c.estimate();
                prop_assert!(now >= prev, "{}: {prev} -> {now}", c.name());
                prev = now;
            }
        }
    }

    /// Peak state bits dominate final state bits, and both are positive.
    #[test]
    fn peak_bits_dominate(seed in any::<u64>(), n in 0u64..200_000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let p = NyParams::new(0.25, 8).unwrap();
        let mut c = NelsonYuCounter::new(p);
        c.increment_by(n, &mut rng);
        prop_assert!(c.peak_state_bits() >= c.state_bits());
        prop_assert!(c.state_bits() >= 3, "X+Y+t is at least three 1-bit fields");
    }

    /// Splitting a stream across two counters and merging equals (in
    /// expectation-ish terms per trial: we check the invariant that the
    /// merged level is at least the max input level) a single counter.
    #[test]
    fn merge_never_loses_levels(seed in any::<u64>(), n1 in 0u64..80_000, n2 in 0u64..80_000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let p = NyParams::new(0.3, 6).unwrap();
        let mut c1 = NelsonYuCounter::new(p);
        c1.increment_by(n1, &mut rng);
        let mut c2 = NelsonYuCounter::new(p);
        c2.increment_by(n2, &mut rng);
        let max_level = c1.level().max(c2.level());
        c1.merge_from(&c2, &mut rng).unwrap();
        prop_assert!(c1.level() >= max_level);
        // And the sampling exponent stayed monotone.
        prop_assert!(c1.sampling_exponent() >= c2.sampling_exponent().min(c1.sampling_exponent()));
    }

    /// Pack/unpack round-trips arbitrary counter states through the
    /// bit-exact serializer.
    #[test]
    fn pack_round_trips(seed in any::<u64>(), n in 0u64..500_000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let p = NyParams::new(0.2, 10).unwrap();
        let mut original = NelsonYuCounter::new(p);
        original.increment_by(n, &mut rng);

        let mut bits = BitVec::new();
        original.pack_state(&mut BitWriter::new(&mut bits));
        prop_assert_eq!(bits.len(), original.packed_bits());

        let mut restored = NelsonYuCounter::new(p);
        restored.unpack_state(&mut BitReader::new(&bits));
        prop_assert_eq!(restored.estimate().to_bits(), original.estimate().to_bits());
        prop_assert_eq!(restored.state_parts(), original.state_parts());
    }

    /// The trial runner is deterministic in (seed, trial index) no matter
    /// how many threads execute it.
    #[test]
    fn runner_reproducibility(seed in any::<u64>(), trials in 1usize..40) {
        let counter = MorrisCounter::classic();
        let a = TrialRunner::new(Workload::fixed(5_000), trials)
            .with_seed(seed)
            .with_threads(1)
            .run(&counter);
        let b = TrialRunner::new(Workload::fixed(5_000), trials)
            .with_seed(seed)
            .with_threads(7)
            .run(&counter);
        prop_assert_eq!(a, b);
    }

    /// Workload sampling stays in range for arbitrary bounds.
    #[test]
    fn workload_in_range(seed in any::<u64>(), lo in 0u64..1_000_000, span in 0u64..1_000_000) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let w = Workload::uniform(lo, lo + span);
        let n = w.sample(&mut rng);
        prop_assert!(n >= lo && n <= lo + span);
    }

    /// Exact DP distributions are probability vectors whose estimator
    /// mean equals N (unbiasedness), for arbitrary small parameters.
    #[test]
    fn exact_dp_unbiased(a in 0.01f64..2.0, n in 1u64..150) {
        let dist = exact_level_distribution(a, n);
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mean: f64 = dist
            .iter()
            .enumerate()
            .map(|(j, &p)| p * ((j as f64) * a.ln_1p()).exp_m1() / a)
            .sum();
        prop_assert!((mean - n as f64).abs() < 1e-6 * (n as f64).max(1.0), "mean {mean} vs {n}");
    }
}
