//! One integration test per headline claim of the paper, at reduced
//! scale. The full-size versions are the `ac-bench` experiment binaries;
//! these tests keep every claim continuously verified by `cargo test`.

use approx_counting::core::budget::{plan_csuros, plan_morris, DEFAULT_SLACK_SIGMAS};
use approx_counting::prelude::*;
use approx_counting::stats::wilson_interval;

/// Theorem 1.1 / 2.3: Algorithm 1's memory is doubly-logarithmic in `N`
/// and in `1/δ`.
#[test]
fn claim_theorem_1_1_space_scaling() {
    let trials = 60;
    let peak = |eps: f64, dlog: u32, n: u64| -> f64 {
        let p = NyParams::new(eps, dlog).unwrap();
        TrialRunner::new(Workload::fixed(n), trials)
            .with_seed(0xC1)
            .run(&NelsonYuCounter::new(p))
            .peak_bits_summary()
            .max()
    };
    // 1024x more increments: a few more bits, not ten.
    let small_n = peak(0.2, 8, 1 << 14);
    let large_n = peak(0.2, 8, 1 << 24);
    assert!(large_n - small_n <= 8.0, "{small_n} -> {large_n}");
    // 2^56 times smaller delta: a few more bits, not ~56.
    let small_d = peak(0.2, 8, 1 << 20);
    let large_d = peak(0.2, 64, 1 << 20);
    assert!(large_d - small_d <= 6.0, "{small_d} -> {large_d}");
}

/// Theorem 1.2: Morris+ meets `P(|N̂−N| > 2εN) ≤ 2δ`.
#[test]
fn claim_theorem_1_2_morris_plus_accuracy() {
    let (eps, dlog) = (0.2, 5u32);
    let trials = 3_000u64;
    let results = TrialRunner::new(Workload::fixed(400_000), trials as usize)
        .with_seed(0xC2)
        .run(&MorrisPlus::new(eps, dlog).unwrap());
    let failures = results.failures(2.0 * eps);
    let (lo, _) = wilson_interval(failures, trials, 0.95);
    let budget = 2.0 * (0.5f64).powi(dlog as i32);
    assert!(
        lo <= budget,
        "failure rate {} not consistent with 2δ = {budget}",
        results.failure_rate(2.0 * eps)
    );
}

/// §1.1 / [Fla85]: `Morris(1)` cannot have low failure probability.
#[test]
fn claim_morris_base2_constant_failure() {
    let results = TrialRunner::new(Workload::fixed(1 << 16), 4_000)
        .with_seed(0xC3)
        .run(&MorrisCounter::classic());
    // At eps = 0.5, the classic counter fails a constant fraction of the
    // time — nowhere near any poly(1/N) rate.
    let rate = results.failure_rate(0.5);
    assert!(rate > 0.2, "rate {rate}");
}

/// Appendix A: vanilla `Morris(a)` violates the δ-guarantee at small `N`
/// (evaluated exactly — the probabilities are below Monte Carlo reach).
#[test]
fn claim_appendix_a_tweak_necessary() {
    let eps = 0.125;
    let dlog = 30u32;
    let delta = (0.5f64).powi(dlog as i32);
    let a = morris_a(eps, dlog).unwrap();
    // P(N̂ < (1-eps)·2) after 2 increments = P(X stays at 1) = 1 - (1+a)^-1.
    let dist = exact_level_distribution(a, 2);
    let p_fail = dist[1];
    assert!(
        p_fail > 1_000.0 * delta,
        "p_fail {p_fail} should dwarf delta {delta}"
    );
    // Morris+ is exact there (2 < N_a), so its failure probability is 0.
    assert!(morris_plus_cutoff(a) > 2);
}

/// Remark 2.4: merging preserves the distribution (mean-level check; the
/// full KS validation runs in ac-core and exp_merge_law).
#[test]
fn claim_remark_2_4_mergeable() {
    let p = NyParams::new(0.25, 8).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xC4);
    let (n1, n2) = (15_000u64, 45_000u64);
    let trials = 1_500;
    let mut merged_mean = 0.0;
    let mut seq_mean = 0.0;
    for _ in 0..trials {
        let mut c1 = NelsonYuCounter::new(p);
        c1.increment_by(n1, &mut rng);
        let mut c2 = NelsonYuCounter::new(p);
        c2.increment_by(n2, &mut rng);
        c1.merge_from(&c2, &mut rng).unwrap();
        merged_mean += c1.estimate();

        let mut c = NelsonYuCounter::new(p);
        c.increment_by(n1 + n2, &mut rng);
        seq_mean += c.estimate();
    }
    merged_mean /= f64::from(trials);
    seq_mean /= f64::from(trials);
    let rel = (merged_mean - seq_mean).abs() / seq_mean;
    assert!(rel < 0.05, "merged {merged_mean} vs sequential {seq_mean}");
}

/// Theorem 3.1: no small automaton distinguishes `[1, T/2]` from
/// `[2T, 4T]`; the minimal distinguisher has exactly `T/2 + 2` states.
#[test]
fn claim_theorem_3_1_lower_bound() {
    use approx_counting::automaton::exhaustive;
    let t = 8u64;
    assert_eq!(exhaustive::scan_all(4, t).distinguishers, 0);
    assert_eq!(
        exhaustive::minimal_distinguishing_states(t, 7),
        Some((t / 2 + 2) as usize)
    );
}

/// §4 / Figure 1: at an equal 17-bit budget the Morris counter and the
/// simplified Algorithm 1 behave nearly identically.
#[test]
fn claim_figure_1_near_identical_cdfs() {
    let bits = 17;
    let w = Workload::figure1();
    let runner = TrialRunner::new(w, 400).with_seed(0xC5);
    let m = runner.run(&plan_morris(bits, w.max_n(), DEFAULT_SLACK_SIGMAS).unwrap());
    let c = runner.run(&plan_csuros(bits, w.max_n(), DEFAULT_SLACK_SIGMAS).unwrap());
    let (m90, c90) = (m.error_ecdf().quantile(0.9), c.error_ecdf().quantile(0.9));
    let ratio = (m90 / c90).max(c90 / m90);
    assert!(ratio < 3.0, "p90 errors {m90} vs {c90}");
    assert!(m.error_ecdf().max() < 0.05 && c.error_ecdf().max() < 0.05);
}

/// §1.2: the promise decision problem is solvable in
/// `O(log 1/ε + log log 1/η)` bits with failure `η`.
#[test]
fn claim_promise_problem() {
    use approx_counting::core::{PromiseAnswer, PromiseDecider, PROMISE_DEFAULT_C};
    let t_param = 200_000u64;
    let eps = 0.25;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xC7);
    let mut wrong = 0u32;
    let trials = 400u32;
    for _ in 0..trials {
        let mut d = PromiseDecider::new(t_param, eps, 6, PROMISE_DEFAULT_C).unwrap();
        d.increment_by((t_param as f64 * (1.0 - eps / 10.0)) as u64, &mut rng);
        if d.answer() != PromiseAnswer::Below {
            wrong += 1;
        }
        // Memory independent of T: C·ln(1/η)/ε² ≈ 300·4.16/0.0625 ≈ 2e4
        // → ≤ 16 bits even though T is 200k.
        assert!(d.peak_state_bits() <= 16);
    }
    assert!(wrong <= 12, "boundary failures {wrong}/{trials}");
}

/// §1.2: the Morris estimator is unbiased with variance `a·N(N−1)/2`.
#[test]
fn claim_estimator_moments() {
    use approx_counting::stats::theory::morris_estimator_variance;
    let (a, n) = (0.5, 2_000u64);
    let results = TrialRunner::new(Workload::fixed(n), 20_000)
        .with_seed(0xC6)
        .run(&MorrisCounter::new(a).unwrap());
    let s = results.rel_error_summary();
    // Mean relative error ~ 0 within 6 standard errors.
    assert!(s.mean().abs() < 6.0 * s.std_error(), "bias {}", s.mean());
    // Variance of the estimate within 15 % of the closed form.
    let est_summary = approx_counting::stats::Summary::from_slice(&results.estimates());
    let theory = morris_estimator_variance(a, n);
    assert!(
        (est_summary.variance() / theory - 1.0).abs() < 0.15,
        "var ratio {}",
        est_summary.variance() / theory
    );
}
