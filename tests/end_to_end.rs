//! End-to-end integration tests: full pipelines across every crate in
//! the workspace (plan → simulate → analyze → report).

use approx_counting::core::budget::{plan_csuros, plan_morris, DEFAULT_SLACK_SIGMAS};
use approx_counting::prelude::*;
use approx_counting::sim::plot::{ascii_chart, Series};
use approx_counting::sim::report::Table;
use approx_counting::stats::ks::ks_two_sample;

#[test]
fn figure1_pipeline_micro() {
    // The complete Figure 1 pipeline at a miniature scale: plan to a bit
    // budget, run a uniform workload, build ECDFs, render the chart.
    let bits = 17;
    let workload = Workload::figure1();
    let morris = plan_morris(bits, workload.max_n(), DEFAULT_SLACK_SIGMAS).unwrap();
    let csuros = plan_csuros(bits, workload.max_n(), DEFAULT_SLACK_SIGMAS).unwrap();

    let runner = TrialRunner::new(workload, 200).with_seed(11);
    let m = runner.run(&morris);
    let c = runner.run(&csuros);

    // Both fit the budget and have single-digit-percent errors.
    assert!(m.peak_bits_summary().max() <= f64::from(bits));
    assert!(c.peak_bits_summary().max() <= f64::from(bits));
    assert!(m.error_ecdf().max() < 0.05);
    assert!(c.error_ecdf().max() < 0.05);

    // The rendering pipeline produces plausible artifacts.
    let chart = ascii_chart(
        &[
            Series::new("morris", m.error_ecdf().percentile_curve(50)),
            Series::new("csuros", c.error_ecdf().percentile_curve(50)),
        ],
        48,
        12,
    );
    assert!(chart.contains('*') && chart.contains('o'));

    let mut table = Table::new(vec!["algo", "max err"]);
    table.row(vec![
        "morris".into(),
        format!("{:.4}", m.error_ecdf().max()),
    ]);
    table.row(vec![
        "csuros".into(),
        format!("{:.4}", c.error_ecdf().max()),
    ]);
    assert_eq!(table.to_markdown().lines().count(), 4);
}

#[test]
fn sharded_counting_with_merge_and_pack() {
    // Count on shards, merge, pack the merged counter into a bit vector,
    // unpack, and verify the estimate survives the round trip.
    use approx_counting::bitio::{BitReader, BitVec, BitWriter};
    use approx_counting::streams::PackState;

    let params = NyParams::new(0.15, 10).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(21);
    let mut shards: Vec<NelsonYuCounter> = Vec::new();
    let loads = [40_000u64, 90_000, 10, 250_000];
    for &load in &loads {
        let mut c = NelsonYuCounter::new(params);
        c.increment_by(load, &mut rng);
        shards.push(c);
    }
    let mut global = shards.remove(0);
    for s in &shards {
        global.merge_from(s, &mut rng).unwrap();
    }
    let total: u64 = loads.iter().sum();
    let rel = (global.estimate() - total as f64).abs() / total as f64;
    assert!(rel < 0.6, "merged rel err {rel}");

    let mut bits = BitVec::new();
    global.pack_state(&mut BitWriter::new(&mut bits));
    let mut restored = NelsonYuCounter::new(params);
    restored.unpack_state(&mut BitReader::new(&bits));
    assert_eq!(restored.estimate(), global.estimate());
}

#[test]
fn lower_bound_applies_to_planned_counters() {
    // Wire the automaton machinery to a counter the budget planner
    // produced: its derandomization must freeze and admit a pumping
    // witness — the Theorem 3.1 pipeline end to end.
    use approx_counting::automaton::adapter::morris_automaton;
    use approx_counting::automaton::pump;

    let planned = plan_morris(10, 1 << 16, DEFAULT_SLACK_SIGMAS).unwrap();
    let cap = u32::try_from(planned.cap().unwrap().min(1 << 12)).unwrap();
    let auto = morris_automaton(planned.a(), cap);
    let det = auto.derandomize();

    let t = 1u64 << 9;
    let witness = pump::find_witness(&det, t).expect("derandomized counter collides");
    assert!(pump::verify_witness(&det, &witness, t));
    assert!(!det.distinguishes(t));
}

#[test]
fn fast_forward_and_step_agree_across_the_stack() {
    // Run the same workload in both execution modes through the runner
    // and compare the error distributions with a KS test.
    let params = NyParams::new(0.3, 6).unwrap();
    let counter = NelsonYuCounter::new(params);
    let ff = TrialRunner::new(Workload::fixed(20_000), 600)
        .with_seed(31)
        .with_mode(ExecutionMode::FastForward)
        .run(&counter);
    let step = TrialRunner::new(Workload::fixed(20_000), 600)
        .with_seed(32)
        .with_mode(ExecutionMode::StepByStep)
        .run(&counter);
    let ks = ks_two_sample(&ff.estimates(), &step.estimates());
    assert!(ks.p_value > 0.001, "KS p = {}", ks.p_value);
}

#[test]
fn streaming_applications_compose() {
    // Dictionary + heavy hitters + reservoir on one stream, all fed by
    // the same Zipf source, all built on the same counter types.
    use approx_counting::randkit::Zipf;
    use approx_counting::streams::ApproxReservoir;

    let mut rng = Xoshiro256PlusPlus::seed_from_u64(41);
    let zipf = Zipf::new(500, 1.3).unwrap();
    let template = MorrisPlus::new(0.2, 8).unwrap();

    let mut dict: ApproxCountingDict<u64, MorrisPlus> = ApproxCountingDict::new(&template);
    let mut hh = SpaceSaving::new(16, &template);
    let mut reservoir = ApproxReservoir::new(10, template.clone());

    for _ in 0..60_000 {
        let item = zipf.sample(&mut rng);
        dict.increment(item, &mut rng);
        hh.offer(item, &mut rng);
        reservoir.offer(item, &mut rng);
    }

    // The dictionary and the heavy-hitter summary agree on the top item.
    let dict_top = dict.top_k(1)[0];
    let hh_top = &hh.report()[0];
    assert_eq!(*dict_top.0, 1);
    assert_eq!(hh_top.item, 1);
    // The reservoir is full and drawn from the stream's support.
    assert_eq!(reservoir.sample().len(), 10);
    assert!(reservoir.sample().iter().all(|&x| (1..=500).contains(&x)));
}

#[test]
fn exact_dp_matches_harness_distribution() {
    // Cross-validate core::exact_level_distribution against the sim
    // harness: empirical level frequencies from the runner must match
    // the DP probabilities.
    let (a, n) = (0.4, 60u64);
    let dist = exact_level_distribution(a, n);
    let results = TrialRunner::new(Workload::fixed(n), 20_000)
        .with_seed(51)
        .run(&MorrisCounter::new(a).unwrap());
    // Recover levels from estimates: estimate = ((1+a)^X - 1)/a.
    let mut counts = vec![0u32; (n + 1) as usize];
    for o in results.outcomes() {
        let level = ((o.estimate * a + 1.0).ln() / a.ln_1p()).round() as usize;
        counts[level.min(n as usize)] += 1;
    }
    for (j, (&p, &obs)) in dist.iter().zip(counts.iter()).enumerate() {
        let expected = p * 20_000.0;
        if expected >= 25.0 {
            let sigma = (expected * (1.0 - p)).sqrt();
            assert!(
                (f64::from(obs) - expected).abs() < 6.0 * sigma,
                "level {j}: {obs} vs {expected:.1}"
            );
        }
    }
}
