//! Workspace smoke test: every `approx_counting::prelude` export is
//! constructed and exercised through the facade, so a broken re-export
//! (or a prelude item whose API drifted) fails this suite rather than
//! shipping.
//!
//! Each test touches one corner of the prelude; together they cover
//! every name it exports.

use approx_counting::prelude::*;

#[test]
fn core_counters_count() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let n = 100_000u64;

    let mut exact = ExactCounter::new();
    exact.increment_by(n, &mut rng);
    assert_eq!(exact.estimate(), n as f64);

    let mut morris = MorrisCounter::classic();
    morris.increment_by(n, &mut rng);
    assert!(morris.estimate() > 0.0);
    assert!(morris.state_bits() > 0);

    let mut plus = MorrisPlus::new(0.1, 10).unwrap();
    plus.increment_by(n, &mut rng);
    assert!((plus.estimate() - n as f64).abs() < 0.5 * n as f64);

    let mut ny = NelsonYuCounter::new(NyParams::new(0.1, 10).unwrap());
    ny.increment_by(n, &mut rng);
    assert!((ny.estimate() - n as f64).abs() < 0.5 * n as f64);

    let mut cs = CsurosCounter::new(6).unwrap();
    cs.increment_by(n, &mut rng);
    assert!((cs.estimate() - n as f64).abs() < 0.5 * n as f64);

    let mut avg = AveragedMorris::new(8, 1.0).unwrap();
    avg.increment_by(n, &mut rng);
    assert!(avg.estimate() > 0.0);

    let mut ea = ExactAlphaNelsonYu::new(NyParams::new(0.2, 8).unwrap());
    ea.increment_by(10_000, &mut rng);
    assert!(ea.estimate() > 0.0);
}

#[test]
fn approx_counter_trait_objects_and_audits() {
    // The prelude's `ApproxCounter` supports dynamic dispatch, and every
    // counter's audit agrees with its `StateBits` implementation.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
    let counters: Vec<Box<dyn ApproxCounter>> = vec![
        Box::new(ExactCounter::new()),
        Box::new(MorrisCounter::classic()),
        Box::new(MorrisPlus::new(0.2, 8).unwrap()),
        Box::new(NelsonYuCounter::new(NyParams::new(0.2, 8).unwrap())),
        Box::new(CsurosCounter::new(4).unwrap()),
    ];
    for mut c in counters {
        c.increment_by(5_000, &mut rng);
        assert!(!c.name().is_empty());
        assert_eq!(
            c.memory_audit().total_bits(),
            c.state_bits(),
            "{}",
            c.name()
        );
    }
}

#[test]
fn core_free_functions_and_errors() {
    let a = morris_a(0.1, 10).unwrap();
    assert!(a > 0.0);
    assert!(morris_plus_cutoff(a) > 0);

    let dist = exact_level_distribution(1.0, 10);
    assert_eq!(dist.len(), 11);
    assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // CoreError is exported and returned for bad parameters.
    let err: CoreError = MorrisPlus::new(2.0, 10).unwrap_err();
    assert!(!err.to_string().is_empty());

    // Budget planners fit a counter into a bit budget.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
    let mut planned = budget::plan_morris(16, 999_999, 6.0).unwrap();
    planned.increment_by(999_999, &mut rng);
    assert!(planned.peak_state_bits() <= 16);
}

#[test]
fn promise_decider_decides() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
    let t = 100_000u64;
    let mut low = PromiseDecider::new(t, 0.3, 6, 300.0).unwrap();
    low.increment_by(t / 2, &mut rng);
    assert_eq!(low.answer(), PromiseAnswer::Below);

    let mut high = PromiseDecider::new(t, 0.3, 6, 300.0).unwrap();
    high.increment_by(2 * t, &mut rng);
    assert_eq!(high.answer(), PromiseAnswer::Above);
}

#[test]
fn randkit_sources_are_deterministic() {
    // Both generators implement the `RandomSource` trait object surface.
    let mut a: Box<dyn RandomSource> = Box::new(Xoshiro256PlusPlus::seed_from_u64(7));
    let mut b: Box<dyn RandomSource> = Box::new(SplitMix64::seed_from_u64(7));
    let xa = a.next_u64();
    let xb = b.next_u64();
    assert_eq!(Xoshiro256PlusPlus::seed_from_u64(7).next_u64(), xa);
    assert_eq!(SplitMix64::seed_from_u64(7).next_u64(), xb);

    // trial_seed decorrelates trial indices.
    assert_ne!(trial_seed(0, 0), trial_seed(0, 1));
}

#[test]
fn state_bits_is_usable_as_a_bound() {
    fn bits<T: StateBits>(x: &T) -> u64 {
        x.state_bits()
    }
    let c = MorrisCounter::classic();
    assert_eq!(bits(&c), c.state_bits());
    assert!(c.peak_state_bits() >= c.state_bits());
}

#[test]
fn sim_runner_runs_both_modes_and_workloads() {
    let counter = MorrisCounter::new(0.5).unwrap();
    for mode in [ExecutionMode::FastForward, ExecutionMode::StepByStep] {
        let results = TrialRunner::new(Workload::uniform(500, 999), 32)
            .with_seed(9)
            .with_mode(mode)
            .run(&counter);
        assert_eq!(results.len(), 32);
        assert!(results.abs_rel_errors().iter().all(|e| e.is_finite()));
    }
    // Fixed workloads and reproducibility across runs.
    let r1 = TrialRunner::new(Workload::fixed(10_000), 16)
        .with_seed(11)
        .run(&counter);
    let r2 = TrialRunner::new(Workload::fixed(10_000), 16)
        .with_seed(11)
        .run(&counter);
    assert_eq!(r1.estimates(), r2.estimates());
}

#[test]
fn streams_consumers_consume() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
    let template = MorrisCounter::new(0.25).unwrap();

    let mut array = CounterArray::new(&template, 8);
    for key in 0..8 {
        array.increment_by(key, 1_000, &mut rng);
    }
    assert!(array.total_estimate() > 0.0);
    assert!(array.total_state_bits() > 0);

    let mut dict: ApproxCountingDict<&str, _> = ApproxCountingDict::new(&template);
    dict.increment_by("wiki/Main_Page", 500, &mut rng);
    dict.increment("wiki/Main_Page", &mut rng);
    assert!(dict.estimate("wiki/Main_Page") > 0.0);
    assert_eq!(dict.len(), 1);

    let mut cms = CountMinSketch::new(64, 3, 42, &template);
    cms.offer_many(123, 2_000, &mut rng);
    assert!(cms.estimate(123) > 0.0);

    let mut ss = SpaceSaving::new(4, &template);
    for item in [1u64, 1, 1, 2, 2, 3, 4, 5, 1, 1] {
        ss.offer(item, &mut rng);
    }
    let report = ss.report();
    assert!(!report.is_empty());
    assert_eq!(ss.items_seen(), 10);
}
