//! # `approx-counting` — Optimal Bounds for Approximate Counting
//!
//! A complete, production-quality Rust reproduction of
//!
//! > Jelani Nelson, Huacheng Yu.
//! > *Optimal Bounds for Approximate Counting.* PODS 2022
//! > (arXiv:2010.02116)
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`core`] — the counters: [`MorrisCounter`](core::MorrisCounter),
//!   [`MorrisPlus`](core::MorrisPlus),
//!   [`NelsonYuCounter`](core::NelsonYuCounter) (**Algorithm 1**),
//!   [`CsurosCounter`](core::CsurosCounter), planners and merge.
//! * [`randkit`] — deterministic PRNGs and exact samplers.
//! * [`bitio`] — bit-level storage and the [`StateBits`](bitio::StateBits)
//!   memory accounting.
//! * [`stats`] — ECDFs, KS tests, tail-bound calculators.
//! * [`automaton`] — the Theorem 3.1 lower bound, executable.
//! * [`streams`] — counter arrays, dictionaries, frequency moments,
//!   reservoir sampling, heavy hitters.
//! * [`engine`] — the sharded keyed-counter engine: the
//!   [`Store`](engine::Store) service facade (runtime family selection
//!   via [`CounterSpec`](core::CounterSpec), cloneable writer/reader
//!   handles with a nonblocking `try_send`/`send` surface and explicit
//!   [`BackpressurePolicy`](engine::BackpressurePolicy), manifest-driven
//!   crash recovery) over four expert layers —
//!   lock-free per-producer ingest rings with per-producer sequence
//!   numbers, the copy-on-write batch-update write path, `O(shards)` snapshot read
//!   replicas with a dirty-epoch-cached merged aggregate, and bit-exact
//!   full + delta checkpoint chains through `ac-bitio` with a background
//!   checkpoint writer.
//! * [`net`] — the wire-protocol front-end: a framed TCP protocol with
//!   per-frame checksums and identity-checked handshakes, the
//!   [`StoreServer`](net::StoreServer) (exactly-once multi-client
//!   ingest, epoch-pinned read RPCs), delta-checkpoint replication to
//!   [`ReplicaNode`](net::ReplicaNode) mirrors, and the
//!   [`StoreClient`](net::StoreClient)/[`NetWriter`](net::NetWriter)
//!   handles mirroring the local nonblocking writer API.
//! * [`sim`] — the parallel experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use approx_counting::prelude::*;
//!
//! // Approximate a count of one million increments to within 10 % with
//! // failure probability 2^-10, in a few dozen bits of state.
//! let params = NyParams::new(0.1, 10).unwrap();
//! let mut counter = NelsonYuCounter::new(params);
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! counter.increment_by(1_000_000, &mut rng);
//!
//! let err = (counter.estimate() - 1.0e6).abs() / 1.0e6;
//! assert!(err < 0.2, "relative error {err}");
//! assert!(counter.state_bits() < 40, "bits: {}", counter.state_bits());
//! ```
//!
//! See `README.md` for the architecture overview, build instructions,
//! and the experiment/CI workflow (each `ac-bench` binary reproduces one
//! figure or claim and prints a `VERDICT:` line).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ac_automaton as automaton;
pub use ac_bitio as bitio;
pub use ac_core as core;
pub use ac_engine as engine;
pub use ac_net as net;
pub use ac_randkit as randkit;
pub use ac_sim as sim;
pub use ac_stats as stats;
pub use ac_streams as streams;

/// One-line import for the common types.
pub mod prelude {
    pub use ac_bitio::StateBits;
    pub use ac_core::{
        budget, exact_level_distribution, morris_a, morris_plus_cutoff, ApproxCounter,
        AveragedMorris, CoreError, CounterFamily, CounterSpec, CsurosCounter, ExactAlphaNelsonYu,
        ExactCounter, Mergeable, MorrisCounter, MorrisPlus, NelsonYuCounter, NyParams,
        PromiseAnswer, PromiseDecider, StateCodec,
    };
    pub use ac_engine::{
        checkpoint_delta, checkpoint_snapshot, restore_checkpoint, restore_checkpoint_chain,
        restore_checkpoint_expecting, BackgroundCheckpointer, BackpressurePolicy, Checkpoint,
        CheckpointError, CheckpointKind, CheckpointStats, CheckpointerConfig, CounterEngine,
        EngineConfig, EngineError, EngineSnapshot, EngineStats, IngestConfig, IngestStats,
        Manifest, ProducerMark, RecoveryReport, SendError, Store, StoreBuilder, StoreOptions,
        StoreReader, StoreStats, StoreWriter,
    };
    pub use ac_net::{
        Identity, NetError, NetWriter, RefuseCode, RemoteReader, ReplicaConfig, ReplicaNode,
        ServerConfig, StoreClient, StoreServer, WriterConfig,
    };
    pub use ac_randkit::{trial_seed, RandomSource, SplitMix64, Xoshiro256PlusPlus};
    pub use ac_sim::{ExecutionMode, TrialRunner, Workload};
    pub use ac_streams::{ApproxCountingDict, CountMinSketch, CounterArray, SpaceSaving};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_whole_stack() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut c = MorrisPlus::new(0.2, 8).unwrap();
        c.increment_by(10_000, &mut rng);
        assert!(c.estimate() > 0.0);
        let _bits = c.state_bits();
    }
}
